#include "sim/json_writer.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "base/logging.hh"

namespace nuca {
namespace json {

bool
Value::asBool() const
{
    panic_if(type_ != Type::Bool, "json: not a bool");
    return bool_;
}

double
Value::asNumber() const
{
    panic_if(type_ != Type::Number, "json: not a number");
    return number_;
}

const std::string &
Value::asString() const
{
    panic_if(type_ != Type::String, "json: not a string");
    return string_;
}

Value &
Value::append(Value element)
{
    panic_if(type_ != Type::Array, "json: append on a non-array");
    elements_.push_back(std::move(element));
    return *this;
}

Value &
Value::set(const std::string &key, Value element)
{
    panic_if(type_ != Type::Object, "json: set on a non-object");
    for (auto &[k, v] : members_) {
        if (k == key) {
            v = std::move(element);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(element));
    return *this;
}

std::size_t
Value::size() const
{
    if (type_ == Type::Array)
        return elements_.size();
    if (type_ == Type::Object)
        return members_.size();
    return 0;
}

const Value &
Value::at(std::size_t i) const
{
    panic_if(type_ != Type::Array, "json: index on a non-array");
    panic_if(i >= elements_.size(), "json: index ", i,
             " out of range (size ", elements_.size(), ")");
    return elements_[i];
}

const Value &
Value::at(const std::string &key) const
{
    panic_if(type_ != Type::Object, "json: member on a non-object");
    for (const auto &[k, v] : members_) {
        if (k == key)
            return v;
    }
    panic("json: no member '", key, "'");
}

bool
Value::contains(const std::string &key) const
{
    if (type_ != Type::Object)
        return false;
    for (const auto &[k, v] : members_) {
        (void)v;
        if (k == key)
            return true;
    }
    return false;
}

std::string
escape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

std::string
numberToString(double n)
{
    panic_if(!std::isfinite(n),
             "json: NaN/Inf cannot be serialized");
    // Integers (the common case: counters, mix sizes) print without
    // an exponent; everything else gets round-trip precision.
    if (n == std::floor(n) && std::abs(n) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", n);
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", n);
    return buf;
}

} // namespace

void
Value::dumpTo(std::string &out, unsigned indent, unsigned depth) const
{
    const std::string pad(indent * (depth + 1), ' ');
    const std::string closePad(indent * depth, ' ');
    const char *nl = indent > 0 ? "\n" : "";
    const char *colon = indent > 0 ? ": " : ":";

    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Number:
        out += numberToString(number_);
        break;
      case Type::String:
        out += '"';
        out += escape(string_);
        out += '"';
        break;
      case Type::Array:
        if (elements_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < elements_.size(); ++i) {
            if (i > 0)
                out += ',';
            out += nl;
            out += pad;
            elements_[i].dumpTo(out, indent, depth + 1);
        }
        out += nl;
        out += closePad;
        out += ']';
        break;
      case Type::Object:
        if (members_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (i > 0)
                out += ',';
            out += nl;
            out += pad;
            out += '"';
            out += escape(members_[i].first);
            out += '"';
            out += colon;
            members_[i].second.dumpTo(out, indent, depth + 1);
        }
        out += nl;
        out += closePad;
        out += '}';
        break;
    }
}

std::string
Value::dump(unsigned indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

/** Recursive-descent parser over a raw character range. */
class Parser
{
  public:
    Parser(const char *begin, const char *end)
        : cur_(begin), end_(end) {}

    bool
    parseDocument(Value &out)
    {
        skipWs();
        if (!parseValue(out, 0))
            return false;
        skipWs();
        return cur_ == end_; // trailing garbage is an error
    }

  private:
    static constexpr unsigned maxDepth = 64;

    void
    skipWs()
    {
        while (cur_ != end_ &&
               (*cur_ == ' ' || *cur_ == '\t' || *cur_ == '\n' ||
                *cur_ == '\r'))
            ++cur_;
    }

    bool
    literal(const char *word)
    {
        const std::size_t len = std::strlen(word);
        if (static_cast<std::size_t>(end_ - cur_) < len ||
            std::strncmp(cur_, word, len) != 0)
            return false;
        cur_ += len;
        return true;
    }

    bool
    parseValue(Value &out, unsigned depth)
    {
        if (depth > maxDepth || cur_ == end_)
            return false;
        switch (*cur_) {
          case 'n': out = Value(); return literal("null");
          case 't': out = Value(true); return literal("true");
          case 'f': out = Value(false); return literal("false");
          case '"': return parseString(out);
          case '[': return parseArray(out, depth);
          case '{': return parseObject(out, depth);
          default: return parseNumber(out);
        }
    }

    bool
    parseString(Value &out)
    {
        std::string s;
        if (!parseRawString(s))
            return false;
        out = Value(std::move(s));
        return true;
    }

    bool
    parseRawString(std::string &out)
    {
        if (cur_ == end_ || *cur_ != '"')
            return false;
        ++cur_;
        while (cur_ != end_ && *cur_ != '"') {
            if (*cur_ != '\\') {
                out += *cur_++;
                continue;
            }
            if (++cur_ == end_)
                return false;
            switch (*cur_) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (end_ - cur_ < 5)
                    return false;
                unsigned code = 0;
                for (int i = 1; i <= 4; ++i) {
                    const char c = cur_[i];
                    code <<= 4;
                    if (c >= '0' && c <= '9')
                        code |= static_cast<unsigned>(c - '0');
                    else if (c >= 'a' && c <= 'f')
                        code |= static_cast<unsigned>(c - 'a' + 10);
                    else if (c >= 'A' && c <= 'F')
                        code |= static_cast<unsigned>(c - 'A' + 10);
                    else
                        return false;
                }
                cur_ += 4;
                // Only the escapes our writer emits (< 0x20) need to
                // round-trip; encode the BMP code point as UTF-8.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default: return false;
            }
            ++cur_;
        }
        if (cur_ == end_)
            return false;
        ++cur_; // closing quote
        return true;
    }

    bool
    parseNumber(Value &out)
    {
        const char *start = cur_;
        if (cur_ != end_ && (*cur_ == '-' || *cur_ == '+'))
            ++cur_;
        bool digits = false;
        while (cur_ != end_ &&
               (std::isdigit(static_cast<unsigned char>(*cur_)) ||
                *cur_ == '.' || *cur_ == 'e' || *cur_ == 'E' ||
                *cur_ == '+' || *cur_ == '-')) {
            digits |= std::isdigit(static_cast<unsigned char>(*cur_));
            ++cur_;
        }
        if (!digits)
            return false;
        const std::string text(start, cur_);
        char *parse_end = nullptr;
        const double n = std::strtod(text.c_str(), &parse_end);
        if (parse_end != text.c_str() + text.size())
            return false;
        out = Value(n);
        return true;
    }

    bool
    parseArray(Value &out, unsigned depth)
    {
        ++cur_; // '['
        out = Value::array();
        skipWs();
        if (cur_ != end_ && *cur_ == ']') {
            ++cur_;
            return true;
        }
        for (;;) {
            Value element;
            skipWs();
            if (!parseValue(element, depth + 1))
                return false;
            out.append(std::move(element));
            skipWs();
            if (cur_ == end_)
                return false;
            if (*cur_ == ',') {
                ++cur_;
                continue;
            }
            if (*cur_ == ']') {
                ++cur_;
                return true;
            }
            return false;
        }
    }

    bool
    parseObject(Value &out, unsigned depth)
    {
        ++cur_; // '{'
        out = Value::object();
        skipWs();
        if (cur_ != end_ && *cur_ == '}') {
            ++cur_;
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (!parseRawString(key))
                return false;
            skipWs();
            if (cur_ == end_ || *cur_ != ':')
                return false;
            ++cur_;
            skipWs();
            Value element;
            if (!parseValue(element, depth + 1))
                return false;
            out.set(key, std::move(element));
            skipWs();
            if (cur_ == end_)
                return false;
            if (*cur_ == ',') {
                ++cur_;
                continue;
            }
            if (*cur_ == '}') {
                ++cur_;
                return true;
            }
            return false;
        }
    }

    const char *cur_;
    const char *end_;
};

} // namespace

std::optional<Value>
Value::tryParse(const std::string &text)
{
    Value out;
    Parser parser(text.data(), text.data() + text.size());
    if (!parser.parseDocument(out))
        return std::nullopt;
    return out;
}

Value
Value::parse(const std::string &text)
{
    auto parsed = tryParse(text);
    fatal_if(!parsed.has_value(), "json: malformed document (",
             text.size(), " bytes)");
    return std::move(*parsed);
}

void
writeFile(const std::string &path, const Value &value)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    fatal_if(f == nullptr, "json: cannot open '", path,
             "' for writing");
    const std::string text = value.dump(2) + "\n";
    const std::size_t written =
        std::fwrite(text.data(), 1, text.size(), f);
    const bool ok = written == text.size() && std::fclose(f) == 0;
    fatal_if(!ok, "json: short write to '", path, "'");
}

void
writeFileAtomic(const std::string &path, const Value &value)
{
    // Write the full document beside the target and rename it into
    // place, so readers (and a resumed sweep) never observe a
    // truncated file even if this process dies mid-write.
    const std::string tmp = path + ".tmp";
    writeFile(tmp, value);
    fatal_if(std::rename(tmp.c_str(), path.c_str()) != 0,
             "json: cannot rename '", tmp, "' to '", path, "'");
}

std::string
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    fatal_if(f == nullptr, "json: cannot open '", path, "'");
    std::string out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

} // namespace json
} // namespace nuca
