/**
 * @file
 * A deterministic worker pool for embarrassingly parallel experiment
 * sweeps. Every (scheme, mix) experiment builds its own CmpSystem
 * from an explicit per-mix seed and shares no mutable state with its
 * siblings, so a sweep can fan out across threads and still produce
 * results bit-identical to the serial loop: jobs are indexed at
 * submission time and each worker writes only results[i], so the
 * output order never depends on scheduling.
 *
 * The pool size comes from the REPRO_JOBS environment variable and
 * defaults to std::thread::hardware_concurrency(); REPRO_JOBS=1
 * degenerates to an inline serial loop with no threads spawned.
 */

#ifndef NUCA_SIM_PARALLEL_RUNNER_HH
#define NUCA_SIM_PARALLEL_RUNNER_HH

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

namespace nuca {

/**
 * Worker count for experiment sweeps: REPRO_JOBS if set and nonzero,
 * otherwise hardware_concurrency() (or 1 where that is unknown).
 */
unsigned jobsFromEnv();

/**
 * Thread-safe completed/total progress line on stderr. Workers call
 * completed() as jobs finish (in any order, from any thread); the
 * reporter redraws a single `\r`-terminated line under a mutex and
 * finish() settles it with a newline. Construction with total == 0
 * or quiet == true suppresses all output.
 */
class ProgressReporter
{
  public:
    ProgressReporter(std::string label, std::size_t total,
                     bool quiet = false);

    /** Count one finished job and redraw the progress line. */
    void completed();

    /** Print the closing "done" line (idempotent). */
    void finish();

    /** Jobs reported finished so far. */
    std::size_t done() const;

  private:
    mutable std::mutex mutex_;
    std::string label_;
    std::size_t total_;
    std::size_t done_ = 0;
    bool quiet_;
    bool finished_ = false;
};

/**
 * Run fn(jobs[i]) for every job on a pool of @p num_threads workers
 * and return the results in submission order: results[i] always
 * corresponds to jobs[i] regardless of which worker ran it or when.
 *
 * @p fn must be safe to invoke concurrently from multiple threads
 * (the experiment harness guarantees this: runMix touches only its
 * own CmpSystem). Its result type must be default-constructible.
 * With num_threads <= 1 (or fewer than two jobs) everything runs
 * inline on the calling thread — that path is the serial reference
 * the determinism tests compare against.
 */
template <typename Job, typename Fn>
auto
runParallel(const std::vector<Job> &jobs, Fn fn, unsigned num_threads,
            ProgressReporter *progress = nullptr)
    -> std::vector<std::invoke_result_t<Fn &, const Job &>>
{
    using Result = std::invoke_result_t<Fn &, const Job &>;
    std::vector<Result> results(jobs.size());

    const std::size_t workers =
        std::min<std::size_t>(num_threads == 0 ? 1 : num_threads,
                              jobs.size());
    if (workers <= 1) {
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            results[i] = fn(jobs[i]);
            if (progress)
                progress->completed();
        }
        return results;
    }

    // The job queue: a shared cursor over the submission-ordered job
    // vector. Workers claim the next unclaimed index and write only
    // their own results slot, so no two threads ever touch the same
    // element.
    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr error;

    auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            try {
                results[i] = fn(jobs[i]);
            } catch (...) {
                std::lock_guard<std::mutex> guard(error_mutex);
                if (!error)
                    error = std::current_exception();
                return;
            }
            if (progress)
                progress->completed();
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t)
        threads.emplace_back(worker);
    for (auto &thread : threads)
        thread.join();

    if (error)
        std::rethrow_exception(error);
    return results;
}

/** Convenience overload: pool size from REPRO_JOBS / the hardware. */
template <typename Job, typename Fn>
auto
runParallel(const std::vector<Job> &jobs, Fn fn,
            ProgressReporter *progress = nullptr)
{
    return runParallel(jobs, std::move(fn), jobsFromEnv(), progress);
}

} // namespace nuca

#endif // NUCA_SIM_PARALLEL_RUNNER_HH
