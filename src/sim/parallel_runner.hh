/**
 * @file
 * A deterministic worker pool for embarrassingly parallel experiment
 * sweeps. Every (scheme, mix) experiment builds its own CmpSystem
 * from an explicit per-mix seed and shares no mutable state with its
 * siblings, so a sweep can fan out across threads and still produce
 * results bit-identical to the serial loop: jobs are indexed at
 * submission time and each worker writes only results[i], so the
 * output order never depends on scheduling.
 *
 * The pool size comes from the REPRO_JOBS environment variable and
 * defaults to std::thread::hardware_concurrency(); REPRO_JOBS=1
 * degenerates to an inline serial loop with no threads spawned.
 *
 * Failure handling is the sweep supervisor's job: every job settles
 * into a JobOutcome (ok / failed / stalled / over_budget) instead of
 * an exception unwinding the pool and discarding completed siblings.
 * The SweepPolicy (REPRO_FAIL) decides whether a failure stops the
 * sweep (abort — workers stop claiming jobs at the next boundary),
 * leaves a recorded hole (skip), or re-runs the job (retry:N).
 */

#ifndef NUCA_SIM_PARALLEL_RUNNER_HH
#define NUCA_SIM_PARALLEL_RUNNER_HH

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "base/profiler.hh"
#include "sim/robustness.hh"
#include "sim/trace_event.hh"

namespace nuca {

/**
 * Worker count for experiment sweeps: REPRO_JOBS if set and nonzero,
 * otherwise hardware_concurrency() (or 1 where that is unknown).
 */
unsigned jobsFromEnv();

/** How one sweep job settled (or, for the service daemon's journal,
 *  where it currently sits in its lifecycle). */
enum class JobStatus
{
    Ok,          ///< the job returned a result
    Failed,      ///< the job threw (result slot holds a default value)
    Stalled,     ///< the watchdog raised SimulationStalled
    OverBudget,  ///< the REPRO_MAX_CYCLES budget ran out
    Crashed,     ///< the isolated child died (signal / nonzero exit)
    TimedOut,    ///< wall-clock deadline or RLIMIT_CPU expired
    Quarantined, ///< crashed repeatedly; retries stopped early
    Queued,      ///< waiting in the daemon's job queue
    Preempted,   ///< yielded at a snapshot boundary; will resume
    CacheHit,    ///< served from the full-result cache, no worker ran
    Interrupted, ///< sweep stopped by SIGINT/SIGTERM before this job
    Cancelled,   ///< withdrawn by an explicit cancel request
};

/** Printable status name ("ok", "failed", "stalled", "over_budget",
 *  "crashed", "timed_out", "quarantined", "queued", "preempted",
 *  "cache_hit", "interrupted", "cancelled"). */
const char *to_string(JobStatus status);

/**
 * True when a re-run could plausibly settle differently. OverBudget
 * is deterministic — the same cycle budget runs out at the same
 * cycle every time — so retrying it burns the budget for nothing;
 * Quarantined exists precisely to stop further attempts.
 */
bool isRetryable(JobStatus status);

/**
 * Delay before retry number @p attempt of job @p job_index:
 * exponential in the attempt (policy.backoffMs doubling per retry,
 * capped at 30 s) plus deterministic jitter seeded from
 * (job, attempt) so concurrent retries desynchronize identically on
 * every run. 0 when the policy disables backoff.
 */
unsigned retryBackoffMs(const SweepPolicy &policy,
                        std::size_t job_index, unsigned attempt);

/**
 * One job's settled outcome. Non-ok outcomes keep the error text (the
 * exception message, which for watchdog failures carries the per-core
 * diagnostic snapshot) and the exception itself so an aborting sweep
 * can rethrow with full fidelity.
 */
template <typename T>
struct JobOutcome
{
    JobStatus status = JobStatus::Ok;
    T value{};
    /** what() of the failure; empty when ok. */
    std::string error;
    /** The captured exception; null when ok. */
    std::exception_ptr exception;

    bool ok() const { return status == JobStatus::Ok; }
};

/**
 * Thread-safe completed/total progress line on stderr. Workers call
 * completed() or failed() as jobs settle (in any order, from any
 * thread); the reporter redraws a single `\r`-terminated line under
 * a mutex and finish() settles it with a newline — reporting
 * "done/total (k failed)" when any job failed, so an abandoned
 * progress line can never masquerade as a clean sweep. Construction
 * with total == 0 or quiet == true suppresses all output.
 */
class ProgressReporter
{
  public:
    ProgressReporter(std::string label, std::size_t total,
                     bool quiet = false);

    /** Count one successfully finished job and redraw. */
    void completed();

    /** Count one failed job and redraw (the line still advances:
     * failures are settled jobs, not missing ones). */
    void failed();

    /** Count one crashed/timed-out/quarantined job: a failure (it
     * advances the failed count) that is also surfaced separately,
     * since a dying child is operationally louder than a clean
     * in-process error. */
    void crashed();

    /** Print the closing "done" line (idempotent). */
    void finish();

    /** Jobs reported successfully finished so far. */
    std::size_t done() const;

    /** Jobs reported failed so far (crashes included). */
    std::size_t failures() const;

    /** The crashed/timed-out/quarantined subset of failures(). */
    std::size_t crashes() const;

  private:
    void redraw();

    mutable std::mutex mutex_;
    std::string label_;
    std::size_t total_;
    std::size_t done_ = 0;
    std::size_t failed_ = 0;
    std::size_t crashed_ = 0;
    bool quiet_;
    bool finished_ = false;
};

namespace parallel_detail {

/** Sleep for a retry backoff (out-of-line; no-op for 0 ms). */
void backoffSleep(unsigned delay_ms);

/**
 * Run one job, classify any failure, honor the retry budget.
 *
 * The retry loop is hardened three ways. Non-retryable outcomes
 * (isRetryable) settle immediately instead of burning the budget on
 * a deterministic failure. Attempts are separated by exponential
 * backoff with seeded jitter (retryBackoffMs) so a transient
 * environmental failure isn't hammered. And crashes (child death or
 * timeout under process isolation) are counted against the
 * policy.maxCrashes quarantine threshold: a poison job that keeps
 * killing its child settles Quarantined after that many crashes, so
 * one bad point cannot consume the whole pool's retry time.
 * Every multi-attempt settlement annotates the error text with the
 * attempt count.
 */
template <typename Result, typename Job, typename Fn>
JobOutcome<Result>
settleJob(const Job &job, std::size_t index, Fn &fn,
          const SweepPolicy &policy)
{
    JobOutcome<Result> outcome;
    const unsigned attempts =
        policy.onFail == FailPolicy::Retry ? policy.retries + 1 : 1;
    unsigned attempt = 0;
    unsigned crashes = 0;
    for (;;) {
        ++attempt;
        try {
            outcome.value = fn(job);
            outcome.status = JobStatus::Ok;
            outcome.error.clear();
            outcome.exception = nullptr;
            return outcome;
        } catch (const SimulationStalled &e) {
            outcome.status = JobStatus::Stalled;
            outcome.error = e.what();
            outcome.exception = std::current_exception();
        } catch (const CycleBudgetExceeded &e) {
            outcome.status = JobStatus::OverBudget;
            outcome.error = e.what();
            outcome.exception = std::current_exception();
        } catch (const JobCrashed &e) {
            outcome.status = JobStatus::Crashed;
            outcome.error = e.what();
            outcome.exception = std::current_exception();
        } catch (const JobTimedOut &e) {
            outcome.status = JobStatus::TimedOut;
            outcome.error = e.what();
            outcome.exception = std::current_exception();
        } catch (const JobPreempted &e) {
            // Not a failure: the job yielded at a snapshot boundary
            // on request. Settle immediately — rerunning it here
            // would defeat the point of asking it to stop — and let
            // the caller (the daemon's scheduler, or a resumed
            // sweep) decide when it continues.
            outcome.status = JobStatus::Preempted;
            outcome.error = e.what();
            outcome.exception = std::current_exception();
            return outcome;
        } catch (const std::exception &e) {
            outcome.status = JobStatus::Failed;
            outcome.error = e.what();
            outcome.exception = std::current_exception();
        } catch (...) {
            outcome.status = JobStatus::Failed;
            outcome.error = "unknown exception";
            outcome.exception = std::current_exception();
        }

        if (outcome.status == JobStatus::Crashed ||
            outcome.status == JobStatus::TimedOut)
            ++crashes;

        if (!isRetryable(outcome.status)) {
            if (attempts > 1) {
                outcome.error += " [attempt " +
                                 std::to_string(attempt) + " of " +
                                 std::to_string(attempts) + "; " +
                                 to_string(outcome.status) +
                                 " is not retryable]";
            }
            return outcome;
        }
        if (policy.onFail == FailPolicy::Retry &&
            policy.maxCrashes != 0 && crashes >= policy.maxCrashes) {
            outcome.error = "quarantined after " +
                            std::to_string(crashes) +
                            " crashed attempt(s): " + outcome.error;
            outcome.status = JobStatus::Quarantined;
            return outcome;
        }
        if (attempt >= attempts) {
            if (attempt > 1) {
                outcome.error += " [after " +
                                 std::to_string(attempt) +
                                 " attempts]";
            }
            return outcome;
        }
        prof::add(prof::Counter::JobRetries, 1);
        backoffSleep(retryBackoffMs(policy, index, attempt));
    }
}

} // namespace parallel_detail

/**
 * Run fn(jobs[i]) for every job on a pool of @p num_threads workers
 * and settle every job into a JobOutcome in submission order:
 * outcomes[i] always corresponds to jobs[i] regardless of which
 * worker ran it or when.
 *
 * Failures never unwind the pool. Under FailPolicy::Abort the first
 * failure raises a stop flag checked at claim time, so in-flight
 * jobs finish but no new work starts (their completed results are
 * still returned). Under Skip the failure is recorded and the sweep
 * continues; under Retry the job is re-run up to policy.retries
 * extra times first.
 *
 * @p on_outcome, when provided, is invoked once per settled job
 * (serialized under a mutex, from worker threads) with the job's
 * submission index — the hook the crash-safe results sidecar hangs
 * off.
 *
 * @return the outcomes, resized to jobs.size(). Jobs skipped because
 * an abort stopped the sweep early are left with status Failed and
 * error "not attempted (sweep aborted)".
 */
template <typename Job, typename Fn>
auto
runParallelOutcomes(
    const std::vector<Job> &jobs, Fn fn, unsigned num_threads,
    ProgressReporter *progress = nullptr,
    const SweepPolicy &policy = SweepPolicy{},
    const std::function<void(
        std::size_t,
        const JobOutcome<std::invoke_result_t<Fn &, const Job &>> &)>
        &on_outcome = {})
    -> std::vector<JobOutcome<std::invoke_result_t<Fn &, const Job &>>>
{
    using Result = std::invoke_result_t<Fn &, const Job &>;
    std::vector<JobOutcome<Result>> outcomes(jobs.size());
    // char, not bool: vector<bool> packs eight flags per byte, so
    // two workers settling neighbouring jobs would race on the
    // shared word. One byte per flag keeps the slots disjoint; the
    // joins below order the writes before the fix-up read loop.
    std::vector<char> attempted(jobs.size(), 0);

    const std::size_t workers =
        std::min<std::size_t>(num_threads == 0 ? 1 : num_threads,
                              jobs.size());

    std::atomic<std::size_t> next{0};
    std::atomic<bool> stop{false};
    std::mutex outcome_mutex;

    auto settleInto = [&](std::size_t i, int trace_tid) {
        attempted[i] = 1;
        {
            // Each job is one host-track span (and one profiler Job
            // phase), so a sweep's wall-clock decomposes per job in
            // the exported trace. Worker threads get distinct tids so
            // concurrent spans land on separate tracks.
            TraceEventLog &log = TraceEventLog::global();
            std::string span_name;
            if (log.enabled())
                span_name = "job " + std::to_string(i);
            TraceEventLog::Span span(log, TraceEventLog::kHostPid,
                                     trace_tid,
                                     std::move(span_name));
            prof::Scope profJob(prof::Phase::Job);
            outcomes[i] = parallel_detail::settleJob<Result>(
                jobs[i], i, fn, policy);
            if (!outcomes[i].ok() && log.enabled()) {
                // Mark the failure inside the job's span so the
                // trace shows *how* each red job settled, not just
                // that it ran.
                log.instant(
                    TraceEventLog::kHostPid, trace_tid,
                    "job " + std::to_string(i) + " " +
                        to_string(outcomes[i].status),
                    log.nowUs(),
                    json::Value::object()
                        .set("status",
                             std::string(
                                 to_string(outcomes[i].status)))
                        .set("error", outcomes[i].error));
            }
        }
        prof::add(prof::Counter::JobsFinished, 1);
        const JobStatus status = outcomes[i].status;
        const bool crashed = status == JobStatus::Crashed ||
                             status == JobStatus::TimedOut ||
                             status == JobStatus::Quarantined;
        if (crashed)
            prof::add(prof::Counter::JobCrashes, 1);
        if (!outcomes[i].ok() && policy.onFail == FailPolicy::Abort)
            stop.store(true, std::memory_order_relaxed);
        if (progress) {
            if (outcomes[i].ok())
                progress->completed();
            else if (crashed)
                progress->crashed();
            else
                progress->failed();
        }
        if (on_outcome) {
            std::lock_guard<std::mutex> guard(outcome_mutex);
            on_outcome(i, outcomes[i]);
        }
    };

    if (workers <= 1) {
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            if (stop.load(std::memory_order_relaxed) ||
                sweepInterruptRequested())
                break;
            settleInto(i, 0);
        }
    } else {
        // The job queue: a shared cursor over the submission-ordered
        // job vector. Workers claim the next unclaimed index and
        // write only their own outcome slot, so no two threads ever
        // touch the same element. The stop flag is checked at claim
        // time: once a failure aborts the sweep, the leftover jobs
        // are not burned through just to be discarded.
        auto worker = [&](int trace_tid) {
            for (;;) {
                // A graceful SIGINT/SIGTERM behaves like an abort:
                // in-flight jobs finish, nothing new is claimed.
                if (stop.load(std::memory_order_relaxed) ||
                    sweepInterruptRequested())
                    return;
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= jobs.size())
                    return;
                settleInto(i, trace_tid);
            }
        };

        TraceEventLog &log = TraceEventLog::global();
        std::vector<std::thread> threads;
        threads.reserve(workers);
        for (std::size_t t = 0; t < workers; ++t) {
            const int trace_tid =
                log.enabled()
                    ? log.newThread(TraceEventLog::kHostPid,
                                    "worker " + std::to_string(t))
                    : static_cast<int>(t);
            threads.emplace_back(worker, trace_tid);
        }
        for (auto &thread : threads)
            thread.join();
    }

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (!attempted[i]) {
            if (sweepInterruptRequested()) {
                outcomes[i].status = JobStatus::Interrupted;
                outcomes[i].error =
                    "not attempted (sweep interrupted by signal)";
            } else {
                outcomes[i].status = JobStatus::Failed;
                outcomes[i].error = "not attempted (sweep aborted)";
            }
        }
    }
    return outcomes;
}

/**
 * Run fn(jobs[i]) for every job and return the bare results in
 * submission order; the first failure (after the pool drains — the
 * stop flag keeps the leftover jobs unclaimed) is rethrown. This is
 * the pre-supervisor contract, kept for callers whose jobs cannot
 * fail in normal operation; sweeps that must survive bad points go
 * through runParallelOutcomes.
 *
 * @p fn must be safe to invoke concurrently from multiple threads
 * (the experiment harness guarantees this: runMix touches only its
 * own CmpSystem). Its result type must be default-constructible.
 * With num_threads <= 1 (or fewer than two jobs) everything runs
 * inline on the calling thread — that path is the serial reference
 * the determinism tests compare against.
 */
template <typename Job, typename Fn>
auto
runParallel(const std::vector<Job> &jobs, Fn fn, unsigned num_threads,
            ProgressReporter *progress = nullptr)
    -> std::vector<std::invoke_result_t<Fn &, const Job &>>
{
    using Result = std::invoke_result_t<Fn &, const Job &>;
    auto outcomes = runParallelOutcomes(jobs, std::move(fn),
                                        num_threads, progress);
    std::vector<Result> results(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (outcomes[i].exception)
            std::rethrow_exception(outcomes[i].exception);
        results[i] = std::move(outcomes[i].value);
    }
    return results;
}

/** Convenience overload: pool size from REPRO_JOBS / the hardware. */
template <typename Job, typename Fn>
auto
runParallel(const std::vector<Job> &jobs, Fn fn,
            ProgressReporter *progress = nullptr)
{
    return runParallel(jobs, std::move(fn), jobsFromEnv(), progress);
}

} // namespace nuca

#endif // NUCA_SIM_PARALLEL_RUNNER_HH
