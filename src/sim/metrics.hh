/**
 * @file
 * Summary metrics used by the evaluation: the paper reports both
 * harmonic and arithmetic means of per-core IPC (Section 2.6 argues
 * the harmonic mean is what the scheme optimizes).
 */

#ifndef NUCA_SIM_METRICS_HH
#define NUCA_SIM_METRICS_HH

#include <vector>

namespace nuca {

/** Harmonic mean; 0 if the input is empty or has a zero element. */
double harmonicMean(const std::vector<double> &values);

/** Arithmetic mean; 0 if the input is empty. */
double arithmeticMean(const std::vector<double> &values);

/** Geometric mean; 0 if the input is empty or has a zero element. */
double geometricMean(const std::vector<double> &values);

/** Element-wise ratio a[i] / b[i]. @pre same sizes, b[i] != 0. */
std::vector<double> speedups(const std::vector<double> &a,
                             const std::vector<double> &b);

} // namespace nuca

#endif // NUCA_SIM_METRICS_HH
