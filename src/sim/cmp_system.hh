/**
 * @file
 * Assembly of the full chip multiprocessor: four out-of-order cores
 * with private L1/L2 hierarchies, one of the four last-level cache
 * organizations, and the shared memory channel. The default run loop
 * is a decoupled per-core event scheduler (a wake heap orders core
 * ticks by (cycle, coreId) and batches a lone runnable core's ticks
 * without re-entering the loop); a legacy whole-machine fast-forward
 * loop and the cycle-by-cycle reference loop are retained behind
 * REPRO_DECOUPLE=0 / REPRO_FASTFWD=0 and are bit-identical to it.
 */

#ifndef NUCA_SIM_CMP_SYSTEM_HH
#define NUCA_SIM_CMP_SYSTEM_HH

#include <memory>
#include <utility>
#include <vector>

#include "base/stats.hh"
#include "base/types.hh"
#include "cpu/coherence.hh"
#include "cpu/memory_system.hh"
#include "cpu/ooo_core.hh"
#include "mem/main_memory.hh"
#include "nuca/adaptive_nuca.hh"
#include "nuca/l3_organization.hh"
#include "sim/robustness.hh"
#include "sim/system_config.hh"
#include "sim/telemetry.hh"
#include "sim/trace_event.hh"
#include "workload/profile.hh"
#include "workload/synth_workload.hh"

namespace nuca {

/** A complete simulated CMP running one multiprogrammed mix. */
class CmpSystem
{
  public:
    /**
     * @param config system parameters
     * @param apps one workload profile per core
     * @param seed workload seed (models the random fast-forward)
     */
    CmpSystem(const SystemConfig &config,
              const std::vector<WorkloadProfile> &apps,
              std::uint64_t seed);

    /**
     * Build a system driven by caller-provided instruction sources
     * (e.g. TraceReplaySource), one per core. The system takes
     * ownership.
     */
    CmpSystem(const SystemConfig &config,
              std::vector<std::unique_ptr<InstSource>> sources);

    /**
     * Advance every core by @p cycles cycles.
     *
     * @throws SimulationStalled when the forward-progress watchdog
     *         sees no retired instruction across all cores for its
     *         window, or an L2D MSHR entry older than its age bound
     * @throws CycleBudgetExceeded when REPRO_MAX_CYCLES is exhausted
     */
    void run(Cycle cycles);

    /**
     * Replace the robustness configuration (the constructors install
     * RobustnessConfig::fromEnv()). Resets the watchdog baseline and
     * the periodic-check schedule to the current cycle.
     */
    void setRobustness(const RobustnessConfig &config);

    /** The active robustness configuration (tests/inspection). */
    const RobustnessConfig &robustness() const { return robust_; }

    /**
     * Enable or disable event-horizon fast-forwarding (constructors
     * install REPRO_FASTFWD, default on). When enabled, run() skips
     * each core's ticks individually while that core is provably
     * stalled (and jumps now_ over windows in which every core is),
     * folding the skipped ticks into the per-cycle statistics before
     * anything observes them, so every counter, distribution,
     * telemetry record and checkpoint stays bit-identical to the
     * reference loop (asserted by the differential tests). See
     * docs/PERFORMANCE.md.
     */
    void setFastForward(bool enabled);

    /** True when run() may skip fully-stalled windows. */
    bool fastForwardEnabled() const { return fastForward_; }

    /**
     * Select the decoupled per-core event scheduler (constructors
     * install REPRO_DECOUPLE, default on; only consulted while
     * fast-forward is enabled — REPRO_FASTFWD=0 always selects the
     * cycle-by-cycle reference loop). The scheduler keeps a min-heap
     * of (nextWakeCycle, coreId), pops ticks in exactly the
     * reference loop's (cycle, coreId) order, and hands a core that
     * is provably the only actor until the next heap entry /
     * telemetry sample / robustness event to OooCore::advance as one
     * batch. Bit-identical to both other loops (asserted by the
     * differential tests); see docs/PERFORMANCE.md.
     */
    void setDecoupled(bool enabled);

    /** True when run() uses the decoupled per-core scheduler. */
    bool decoupledEnabled() const { return decoupled_; }

    /**
     * Host-side scheduler diagnostics (like the fast-forward
     * counters: never statistics, never checkpointed). Ticks
     * actually executed per core — the complement of the cycles the
     * active loop skipped for that core individually.
     */
    Counter coreTicksExecuted(CoreId core) const;

    /** Cycles covered by OooCore::advance batches (executed ticks
     * plus the stall cycles folded inside them). */
    Counter decoupledBatchedCycles() const { return batchedCycles_; }

    /** Wake-heap pops taken by the decoupled scheduler. */
    Counter wakeHeapPops() const { return heapPops_; }

    /** Per-core wake horizons recomputed (heap pushes). */
    Counter horizonRecomputes() const { return horizonPushes_; }

    /**
     * Histogram of advance-batch spans in cycles: bucket k counts
     * batches whose span s has bit_width(s) == k, i.e. s in
     * [2^(k-1), 2^k). Bucket 0 is unused.
     */
    const std::vector<Counter> &horizonHistogram() const
    {
        return horizonHist_;
    }

    /**
     * Host-side fast-forward diagnostics: cycles run() skipped and
     * jumps it took. Deliberately *not* statistics and *not*
     * checkpointed — they describe how the simulation was executed,
     * not what it simulated, and folding them into either would
     * break the bit-identity contract between the two loop modes.
     */
    Counter fastForwardedCycles() const { return ffSkipped_; }
    Counter fastForwardJumps() const { return ffJumps_; }

    /**
     * Run one structural-invariant pass immediately: L3 structure
     * (LRU permutation, set placement, quota accounting) plus every
     * core's L2D MSHR file. Panics on violation.
     */
    void checkStructuralInvariants() const;

    /**
     * Attach a telemetry sink: a "sample" record every @p period
     * cycles, plus one "repartition" record per sharing-engine epoch
     * when the scheme is adaptive. Tracing only reads counters the
     * simulation maintains anyway — simulated behaviour is
     * bit-identical with or without a sink. The sink must outlive
     * this system's remaining run() calls; pass nullptr to detach.
     */
    void attachTelemetry(TraceSink *sink, Cycle period);

    /**
     * Start emitting "heatmap" telemetry records next to every
     * sample: per-bank/per-set-bucket L3 access and miss interval
     * counts plus the partition-occupancy histograms. @p buckets
     * groups the (large) set index space into at most that many
     * spatial buckets per bank. Requires an attached telemetry sink
     * to produce output. Purely observational: heatmap counters live
     * outside the stats tree and are never checkpointed, so stats,
     * checkpoint bytes, and the non-heatmap telemetry records stay
     * bit-identical (asserted by the differential tests). @return
     * false when the L3 organization has no spatial structure.
     */
    bool enableHeatmap(unsigned buckets = 64);

    /**
     * Register this system on a trace-event log: fast-forward jumps,
     * repartitions, watchdog/invariant events, and per-sample
     * counter tracks (IPC, MSHR-full stalls, quotas) are emitted on
     * an own Perfetto process track whose timestamps are simulated
     * cycles. Pass nullptr to detach.
     */
    void attachTraceEvents(TraceEventLog *log,
                           const std::string &label);

    /**
     * Zero all statistics (the warm-up boundary). Cache contents
     * and predictor state are preserved.
     */
    void resetStats();

    /**
     * Serialize the whole machine — cycle count, workload state,
     * every cache/predictor/queue, and all statistics — such that
     * restore() into an identically configured system resumes
     * bit-identically.
     */
    void checkpoint(Serializer &s) const;

    /**
     * Restore state written by checkpoint(). The receiving system
     * must have been constructed with the same SystemConfig and
     * workload setup (enforced structurally via size checks; callers
     * should additionally key checkpoint files by a config hash).
     * Re-baselines the robustness watchdog at the restored cycle.
     *
     * @throws CheckpointError on any structural mismatch
     */
    void restore(Deserializer &d);

    /** Cycles simulated since the last resetStats(). */
    Cycle measuredCycles() const { return now_ - statsZero_; }

    /** Committed IPC of @p core since the last resetStats(). */
    double ipcOf(CoreId core) const;

    /** Per-core IPCs since the last resetStats(). */
    std::vector<double> ipcs() const;

    /** L3 data accesses of @p core per 1000 cycles since reset
     * (the Figure 5 classification metric). */
    double l3AccessesPerKilocycle(CoreId core) const;

    unsigned numCores() const { return config_.numCores; }
    Cycle now() const { return now_; }

    L3Organization &l3() { return *l3_; }
    /** The adaptive organization, or nullptr for other schemes. */
    AdaptiveNuca *adaptive() { return adaptive_; }
    MainMemory &memory() { return memory_; }
    /** The coherence hub, or nullptr outside parallel mode. */
    CoherenceHub *coherence() { return coherence_.get(); }
    OooCore &coreAt(CoreId core);
    MemorySystem &memOf(CoreId core);
    stats::Group &statsRoot() { return root_; }

  private:
    SystemConfig config_;
    stats::Group root_;
    MainMemory memory_;
    std::unique_ptr<L3Organization> l3_;
    AdaptiveNuca *adaptive_ = nullptr;

    /** Shared tail of both constructors. */
    void buildSystem();

    std::vector<std::unique_ptr<InstSource>> workloads_;
    std::unique_ptr<CoherenceHub> coherence_;
    std::vector<std::unique_ptr<MemorySystem>> memSystems_;
    std::vector<std::unique_ptr<OooCore>> cores_;

    Cycle now_ = 0;
    Cycle statsZero_ = 0;
    /** Committed/accesses baselines captured at resetStats(). */
    std::vector<Counter> committedZero_;
    std::vector<Counter> l3AccessZero_;

    /** The legacy whole-machine fast-forward loop (REPRO_DECOUPLE=0)
     * and the cycle-by-cycle reference loop (REPRO_FASTFWD=0). */
    void runLegacy(Cycle end);

    /**
     * The decoupled per-core event scheduler. Repeats: compute the
     * next barrier (run end, telemetry sample, robustness event),
     * execute every core tick strictly before it in (cycle, coreId)
     * order via runCoresUntil, then settle and fire the barrier's
     * events exactly as the reference loop would at that cycle.
     */
    void runDecoupled(Cycle end);

    /**
     * Pop-and-dispatch until every scheduled core tick at a cycle
     * before @p cap has executed, then account the trailing idle gap
     * and set now_ = cap. A popped core that is alone at its cycle
     * is batched (advanceSole); cores sharing a cycle run in
     * lockstep, ascending coreId per cycle, with per-cycle joins
     * from the heap and demotion back to it on stall — exactly the
     * reference loop's mutation order, minus the provably-stalled
     * ticks.
     */
    void runCoresUntil(Cycle cap);

    /**
     * Batch core @p c from @p start: the advance limit is the
     * largest window in which it provably stays the only actor (the
     * next heap entry's cycle — plus one when this core's id is
     * smaller, since it precedes that core within the shared cycle —
     * all capped by @p cap and REPRO_DECOUPLE_BATCH), then one
     * OooCore::advance call plus the scheduler bookkeeping.
     */
    void advanceSole(std::uint32_t c, Cycle start, Cycle cap);

    /** Rebuild the wake heap from coreWake_ (every run() entry:
     * restore/setFastForward/setDecoupled re-anchor the horizons). */
    void rebuildWakeHeap();

    /** Record a new horizon for @p c and re-insert it in the heap
     * (neverWakes cores stay out until something re-anchors them). */
    void pushWake(Cycle wake, std::uint32_t c);

    /** Fold core @p c's pending skipped span up to @p upTo. */
    void settlePending(std::uint32_t c, Cycle upTo);

    /** Account the machine-idle window [frontier_, to) against the
     * fast-forward counters and trace events. */
    void accountIdleGap(Cycle to);

    /**
     * Event horizon across the whole machine: the earliest cycle
     * after @p last (the cycle just ticked) at which any core can
     * make progress or any memory-side component (MSHR files, the
     * stride prefetchers, the memory channel) has a completion
     * pending. Only consulted when every core reports a wake-up
     * beyond last + 1.
     */
    Cycle nextWakeCycle(Cycle last) const;

    /**
     * Jump now_ forward to the event horizon, capped by the run
     * window end, the next telemetry sample, and the next robustness
     * event. Called with the tick at now_ - 1 just executed; a no-op
     * unless every core is quiescent past now_ (read off the cached
     * coreWake_ horizons, which stay exact while a core sleeps
     * because a stalled core's state cannot change). The skipped
     * ticks' bookkeeping is not folded here — each core's pending
     * span settles lazily (settleCores / its next real tick).
     */
    void fastForwardNow(Cycle end);

    /**
     * Fold every core's pending skipped-tick span into its per-cycle
     * statistics, up to (excluding) the current cycle. Must run
     * before anything outside the skip machinery observes core state
     * — a telemetry sample, a robustness event, or run() returning —
     * so the externally visible trajectory is indistinguishable from
     * the tick-every-cycle reference loop.
     */
    void settleCores();

    /** Emit one telemetry sample and advance the interval baseline. */
    void emitSample();
    /** Emit one "heatmap" record (bucketized interval deltas). */
    void emitHeatmap();
    /** Emit per-sample counter tracks on the trace-event log. */
    void emitCounterEvents();
    /** Forward one sharing-engine epoch event to the sink. */
    void emitRepartition(const RepartitionEvent &event);

    /** Dispatch whichever robustness events are due at now_. */
    void robustnessTick();
    /** Recompute nextRobustEvent_ from the pending event cycles. */
    void scheduleRobustness();
    /** Plant the configured REPRO_FAULT defect (simulator kinds). */
    void plantFault();
    /** Zero-retirement window and MSHR age bound checks. */
    void watchdogCheck();
    /** Per-core pipeline/MSHR/channel state for stall messages. */
    std::string progressSnapshot() const;

    RobustnessConfig robust_;
    /** True when any robustness event is scheduled at all. */
    bool robustActive_ = false;
    Cycle nextRobustEvent_ = 0;
    Cycle nextCheck_ = 0;
    Cycle watchdogPeriod_ = 0;
    Cycle nextWatchdog_ = 0;
    Counter watchdogLastCommitted_ = 0;
    Cycle watchdogLastProgress_ = 0;
    bool faultPlanted_ = false;

    /** REPRO_FASTFWD: skip provably stalled windows in run(). */
    bool fastForward_ = true;
    Counter ffSkipped_ = 0;
    Counter ffJumps_ = 0;
    /**
     * Per-core skip state, meaningful only while fastForward_ is on.
     * coreWake_[c] is the horizon the core's last real tick computed
     * (nextWakeCycle): ticks at cycles strictly before it are
     * provable no-ops and are skipped. corePendingStart_[c] is the
     * first skipped cycle not yet folded into the core's statistics;
     * == the next tick cycle when nothing is pending. Derived state:
     * reset to now_ on restore and on setFastForward, never
     * checkpointed (run() settles before returning, so no span is
     * ever pending at a checkpoint).
     */
    std::vector<Cycle> coreWake_;
    std::vector<Cycle> corePendingStart_;

    /** REPRO_DECOUPLE: per-core event scheduling in run(). */
    bool decoupled_ = true;
    /** REPRO_DECOUPLE_BATCH: advance-batch span cap (0 = none). */
    Cycle batchCap_ = 0;
    /**
     * Min-heap (std::*_heap with std::greater) of (wake, coreId):
     * one entry per core whose horizon is finite. Pair ordering
     * makes equal-cycle pops come out in ascending coreId — the
     * reference loop's within-cycle order — for free. Rebuilt from
     * coreWake_ at every run() entry; only meaningful inside
     * runDecoupled.
     */
    std::vector<std::pair<Cycle, std::uint32_t>> wakeHeap_;
    /** Cores ticking in lockstep at the current cycle (ascending
     * id) and the per-cycle joiners scratch (runCoresUntil). */
    std::vector<std::uint32_t> cohort_;
    std::vector<std::uint32_t> joiners_;
    /**
     * One past the last executed tick cycle: the start of the
     * current machine-idle window, so gaps discovered at the next
     * pop or barrier can be accounted once, contiguously.
     */
    Cycle frontier_ = 0;
    /** Scheduler diagnostics (host-side; see the accessors). */
    std::vector<Counter> coreTicks_;
    Counter batchedCycles_ = 0;
    Counter heapPops_ = 0;
    Counter horizonPushes_ = 0;
    std::vector<Counter> horizonHist_;

    TraceSink *trace_ = nullptr;
    Cycle tracePeriod_ = 0;
    Cycle nextSample_ = 0;
    /** Previous-sample baselines the interval deltas are taken from. */
    Cycle samplePrevCycle_ = 0;
    std::vector<Counter> samplePrevCommitted_;
    std::vector<Counter> samplePrevL3Access_;
    std::vector<Counter> samplePrevL3Miss_;
    std::vector<Counter> samplePrevL3Local_;
    std::vector<Counter> samplePrevL3Remote_;
    Counter samplePrevFetches_ = 0;
    Counter samplePrevWritebacks_ = 0;
    Counter samplePrevQueueCycles_ = 0;

    /**
     * Spatial heatmap sampling (enableHeatmap). Bucketized previous
     * totals, bank-major: index bank * heatBuckets_ + bucket. Host
     * observability only — never checkpointed.
     */
    unsigned heatBuckets_ = 0;
    std::vector<std::uint64_t> heatPrevAccess_;
    std::vector<std::uint64_t> heatPrevMiss_;

    /** Trace-event emission (attachTraceEvents). */
    TraceEventLog *events_ = nullptr;
    int evtPid_ = 0;
    std::vector<Counter> evtPrevMshrStalls_;
};

} // namespace nuca

#endif // NUCA_SIM_CMP_SYSTEM_HH
