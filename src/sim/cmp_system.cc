#include "sim/cmp_system.hh"

#include <algorithm>
#include <bit>
#include <functional>
#include <limits>
#include <sstream>

#include "base/logging.hh"
#include "base/profiler.hh"
#include "nuca/private_l3.hh"
#include "nuca/random_replacement_l3.hh"
#include "nuca/shared_l3.hh"
#include "serialize/serializer.hh"
#include "sim/experiment.hh"

namespace nuca {

namespace {

MainMemoryParams
memParamsFor(const SystemConfig &config)
{
    MainMemoryParams p;
    p.firstChunkLatency = config.scheme == L3Scheme::Private
                              ? config.memFirstChunkPrivate
                              : config.memFirstChunkShared;
    return p;
}

} // namespace

CmpSystem::CmpSystem(const SystemConfig &config,
                     const std::vector<WorkloadProfile> &apps,
                     std::uint64_t seed)
    : config_(config),
      root_("system"),
      memory_(root_, "memory", memParamsFor(config))
{
    fatal_if(apps.size() != config_.numCores,
             "need exactly one workload per core (", config_.numCores,
             " cores, ", apps.size(), " workloads)");
    for (unsigned c = 0; c < config_.numCores; ++c) {
        workloads_.push_back(std::make_unique<SynthWorkload>(
            apps[c], static_cast<CoreId>(c),
            seed + c * 0x9e3779b9ull));
    }
    buildSystem();
}

CmpSystem::CmpSystem(const SystemConfig &config,
                     std::vector<std::unique_ptr<InstSource>> sources)
    : config_(config),
      root_("system"),
      memory_(root_, "memory", memParamsFor(config))
{
    fatal_if(sources.size() != config_.numCores,
             "need exactly one instruction source per core (",
             config_.numCores, " cores, ", sources.size(),
             " sources)");
    for (auto &source : sources) {
        fatal_if(source == nullptr, "null instruction source");
        workloads_.push_back(std::move(source));
    }
    buildSystem();
}

void
CmpSystem::buildSystem()
{
    switch (config_.scheme) {
      case L3Scheme::Private: {
          PrivateL3Params p;
          p.numCores = config_.numCores;
          p.sizePerCoreBytes = config_.l3SizePerCoreBytes;
          p.assoc = config_.l3LocalAssoc;
          p.hitLatency = config_.l3LocalLatency;
          p.policy = config_.l3ReplPolicy;
          l3_ = std::make_unique<PrivateL3>(root_, p, memory_);
          break;
      }
      case L3Scheme::Shared: {
          SharedL3Params p;
          p.numCores = config_.numCores;
          p.sizeBytes = config_.l3SizePerCoreBytes * config_.numCores;
          p.assoc = config_.l3LocalAssoc * config_.numCores;
          p.hitLatency = config_.l3SharedLatency;
          p.policy = config_.l3ReplPolicy;
          l3_ = std::make_unique<SharedL3>(root_, p, memory_);
          break;
      }
      case L3Scheme::Adaptive: {
          AdaptiveNucaParams p;
          p.numCores = config_.numCores;
          p.sizePerCoreBytes = config_.l3SizePerCoreBytes;
          p.localAssoc = config_.l3LocalAssoc;
          p.localHitLatency = config_.l3LocalLatency;
          p.remoteHitLatency = config_.l3SharedLatency;
          p.epochMisses = config_.epochMisses;
          p.shadowSampleShift = config_.shadowSampleShift;
          p.adaptationEnabled = config_.adaptationEnabled;
          p.allowRemotePrivateHits = config_.coherentSharing;
          auto adaptive =
              std::make_unique<AdaptiveNuca>(root_, p, memory_);
          adaptive_ = adaptive.get();
          l3_ = std::move(adaptive);
          break;
      }
      case L3Scheme::RandomReplacement: {
          RandomReplacementL3Params p;
          p.numCores = config_.numCores;
          p.sizePerCoreBytes = config_.l3SizePerCoreBytes;
          p.assoc = config_.l3LocalAssoc;
          p.localHitLatency = config_.l3LocalLatency;
          p.remoteHitLatency = config_.l3SharedLatency;
          p.seed = config_.schemeSeed;
          l3_ = std::make_unique<RandomReplacementL3>(root_, p,
                                                      memory_);
          break;
      }
    }

    if (config_.coherentSharing)
        coherence_ = std::make_unique<CoherenceHub>(root_);

    for (unsigned c = 0; c < config_.numCores; ++c) {
        const auto core = static_cast<CoreId>(c);
        memSystems_.push_back(std::make_unique<MemorySystem>(
            root_, "core" + std::to_string(c) + ".mem", core,
            config_.coreMem, *l3_));
        if (coherence_) {
            coherence_->attach(memSystems_.back().get());
            memSystems_.back()->setCoherenceHub(coherence_.get());
        }
        cores_.push_back(std::make_unique<OooCore>(
            root_, "core" + std::to_string(c), core, config_.core,
            *memSystems_.back(), *workloads_[c]));
    }

    committedZero_.assign(config_.numCores, 0);
    l3AccessZero_.assign(config_.numCores, 0);
    coreWake_.assign(config_.numCores, now_);
    corePendingStart_.assign(config_.numCores, now_);
    coreTicks_.assign(config_.numCores, 0);
    // Bucket k of the batch-span histogram holds spans with
    // bit_width k; 64-bit spans give buckets 1..64.
    horizonHist_.assign(65, 0);
    wakeHeap_.reserve(config_.numCores);
    cohort_.reserve(config_.numCores);
    joiners_.reserve(config_.numCores);

    fastForward_ = envOr("REPRO_FASTFWD", 1) != 0;
    decoupled_ = envOr("REPRO_DECOUPLE", 1) != 0;
    batchCap_ = envOr("REPRO_DECOUPLE_BATCH", 0);
    setRobustness(RobustnessConfig::fromEnv());
}

void
CmpSystem::setRobustness(const RobustnessConfig &config)
{
    robust_ = config;
    faultPlanted_ = false;
    nextCheck_ = now_ + robust_.checkPeriod;
    // Probe a few times per bound (whichever is tighter) so a stall
    // is reported within ~1.25 windows of its onset and an overaged
    // MSHR entry soon after it crosses the age bound.
    watchdogPeriod_ = std::max<Cycle>(
        1, std::min(robust_.watchdogWindow, robust_.mshrAgeBound) / 4);
    nextWatchdog_ = now_ + watchdogPeriod_;
    watchdogLastProgress_ = now_;
    watchdogLastCommitted_ = 0;
    for (const auto &core : cores_)
        watchdogLastCommitted_ += core->committed();
    scheduleRobustness();
}

void
CmpSystem::scheduleRobustness()
{
    Cycle next = std::numeric_limits<Cycle>::max();
    if (robust_.checkEnabled)
        next = std::min(next, nextCheck_);
    if (robust_.watchdogEnabled)
        next = std::min(next, nextWatchdog_);
    if (robust_.maxCycles != 0)
        next = std::min(next, robust_.maxCycles);
    if (robust_.fault.isSimFault() && !faultPlanted_)
        next = std::min(next, static_cast<Cycle>(robust_.fault.arg));
    robustActive_ = next != std::numeric_limits<Cycle>::max();
    nextRobustEvent_ = next;
}

void
CmpSystem::setFastForward(bool enabled)
{
    if (fastForward_)
        settleCores();
    fastForward_ = enabled;
    // The cached horizons may be stale (built at cycle 0, or left
    // behind by an earlier fast-forwarded run); re-anchor so every
    // core ticks at the current cycle and no phantom span is folded.
    std::fill(coreWake_.begin(), coreWake_.end(), now_);
    std::fill(corePendingStart_.begin(), corePendingStart_.end(),
              now_);
}

void
CmpSystem::setDecoupled(bool enabled)
{
    if (fastForward_)
        settleCores();
    decoupled_ = enabled;
    // Same re-anchoring as setFastForward: the wake heap is rebuilt
    // from coreWake_ at the next run() entry, so resetting the
    // horizons here is all a mode switch needs.
    std::fill(coreWake_.begin(), coreWake_.end(), now_);
    std::fill(corePendingStart_.begin(), corePendingStart_.end(),
              now_);
}

void
CmpSystem::settleCores()
{
    for (unsigned c = 0; c < coreWake_.size(); ++c) {
        if (corePendingStart_[c] < now_) {
            cores_[c]->skipStalledCycles(
                corePendingStart_[c], now_ - corePendingStart_[c]);
            corePendingStart_[c] = now_;
        }
    }
}

void
CmpSystem::run(Cycle cycles)
{
    prof::Scope profRun(prof::Phase::Run);
    const Cycle end = now_ + cycles;
    if (fastForward_ && decoupled_) {
        const Counter pops0 = heapPops_;
        const Counter pushes0 = horizonPushes_;
        const Counter batched0 = batchedCycles_;
        runDecoupled(end);
        prof::add(prof::Counter::WakeHeapPops, heapPops_ - pops0);
        prof::add(prof::Counter::HorizonRecomputes,
                  horizonPushes_ - pushes0);
        prof::add(prof::Counter::DecoupledBatchedCycles,
                  batchedCycles_ - batched0);
        return;
    }
    runLegacy(end);
}

void
CmpSystem::runLegacy(Cycle end)
{
    while (now_ < end) {
        if (fastForward_) {
            for (unsigned c = 0; c < cores_.size(); ++c) {
                if (now_ < coreWake_[c])
                    continue; // provably stalled; fold lazily
                OooCore &core = *cores_[c];
                if (corePendingStart_[c] < now_) {
                    core.skipStalledCycles(
                        corePendingStart_[c],
                        now_ - corePendingStart_[c]);
                }
                core.tick(now_);
                ++coreTicks_[c];
                corePendingStart_[c] = now_ + 1;
                coreWake_[c] = core.nextWakeCycle(now_);
            }
            ++now_;
            fastForwardNow(end);
        } else {
            for (unsigned c = 0; c < cores_.size(); ++c) {
                cores_[c]->tick(now_);
                ++coreTicks_[c];
            }
            ++now_;
        }
        if (trace_ && now_ >= nextSample_) {
            if (fastForward_)
                settleCores();
            emitSample();
            nextSample_ += tracePeriod_;
        }
        if (robustActive_ && now_ >= nextRobustEvent_) {
            if (fastForward_)
                settleCores();
            robustnessTick();
        }
    }
    // Nothing may stay pending across the return: the caller is free
    // to dump stats, checkpoint, or emit telemetry next.
    if (fastForward_)
        settleCores();
}

void
CmpSystem::runDecoupled(Cycle end)
{
    rebuildWakeHeap();
    frontier_ = now_;
    while (now_ < end) {
        // The barrier: no core tick at or past this cycle may run
        // before the events due there have fired. These are exactly
        // the caps the legacy jump respects, so samples, robustness
        // events, and the run window end land at the cycles the
        // reference loop lands them.
        Cycle cap = end;
        if (trace_ && nextSample_ < cap)
            cap = nextSample_;
        if (robustActive_ && nextRobustEvent_ < cap)
            cap = nextRobustEvent_;
        if (cap <= now_) {
            // An event that stays due (the lru_corrupt fault retries
            // until the L3 can be corrupted) re-fires after every
            // cycle in the reference loop; advance exactly one.
            cap = now_ + 1;
        }

        runCoresUntil(cap);

        const bool sampleDue = trace_ && now_ >= nextSample_;
        const bool robustDue =
            robustActive_ && now_ >= nextRobustEvent_;
        if (sampleDue || robustDue) {
            prof::Scope profDrain(prof::Phase::UncoreDrain);
            settleCores();
            if (sampleDue) {
                emitSample();
                nextSample_ += tracePeriod_;
            }
            if (robustDue)
                robustnessTick();
        }
    }
    settleCores();
}

void
CmpSystem::runCoresUntil(Cycle cap)
{
    for (;;) {
        Cycle t;
        std::uint32_t c;
        {
            const bool profHeap =
                prof::samplePoint(prof::Phase::WakeHeap);
            prof::MaybeScope s(profHeap, prof::Phase::WakeHeap);
            if (wakeHeap_.empty() || wakeHeap_.front().first >= cap)
                break;
            std::pop_heap(wakeHeap_.begin(), wakeHeap_.end(),
                          std::greater<>());
            t = wakeHeap_.back().first;
            c = wakeHeap_.back().second;
            wakeHeap_.pop_back();
            ++heapPops_;
        }
        if (t > frontier_)
            accountIdleGap(t);

        if (wakeHeap_.empty() || wakeHeap_.front().first > t) {
            advanceSole(c, t, cap);
            continue;
        }

        // Several cores share cycle t: lockstep, ascending coreId
        // per cycle (equal-cycle heap pops already arrive in id
        // order), demoting a core that stalls back to the heap and
        // joining cores as their wake-ups come due.
        cohort_.clear();
        cohort_.push_back(c);
        while (!wakeHeap_.empty() && wakeHeap_.front().first == t) {
            std::pop_heap(wakeHeap_.begin(), wakeHeap_.end(),
                          std::greater<>());
            cohort_.push_back(wakeHeap_.back().second);
            wakeHeap_.pop_back();
            ++heapPops_;
        }
        Cycle u = t;
        for (;;) {
            if (u >= cap) {
                // Still runnable, but the window is over: park the
                // survivors at the barrier cycle.
                for (const std::uint32_t id : cohort_)
                    pushWake(u, id);
                frontier_ = u;
                break;
            }
            if (cohort_.size() == 1) {
                advanceSole(cohort_[0], u, cap);
                break;
            }
            now_ = u;
            std::size_t keep = 0;
            for (std::size_t i = 0; i < cohort_.size(); ++i) {
                const std::uint32_t id = cohort_[i];
                OooCore &core = *cores_[id];
                settlePending(id, u);
                core.tick(u);
                ++coreTicks_[id];
                const Cycle w = core.nextWakeCycle(u);
                corePendingStart_[id] = u + 1;
                if (w == u + 1)
                    cohort_[keep++] = id;
                else
                    pushWake(w, id);
            }
            cohort_.resize(keep);
            ++u;
            if (!wakeHeap_.empty() && wakeHeap_.front().first == u) {
                joiners_.clear();
                while (!wakeHeap_.empty() &&
                       wakeHeap_.front().first == u) {
                    std::pop_heap(wakeHeap_.begin(), wakeHeap_.end(),
                                  std::greater<>());
                    joiners_.push_back(wakeHeap_.back().second);
                    wakeHeap_.pop_back();
                    ++heapPops_;
                }
                const std::size_t mid = cohort_.size();
                cohort_.insert(cohort_.end(), joiners_.begin(),
                               joiners_.end());
                std::inplace_merge(cohort_.begin(),
                                   cohort_.begin() +
                                       static_cast<std::ptrdiff_t>(
                                           mid),
                                   cohort_.end());
            }
            if (cohort_.empty()) {
                frontier_ = u;
                break;
            }
        }
    }
    if (cap > frontier_)
        accountIdleGap(cap);
    now_ = cap;
}

void
CmpSystem::advanceSole(std::uint32_t c, Cycle start, Cycle cap)
{
    // The largest window in which core c provably acts alone: up to
    // the next scheduled core tick — inclusive when this core's id
    // orders it first within that shared cycle — and never past the
    // barrier. Every uncore access the batch makes therefore lands
    // in reference (cycle, coreId) order, and the cores still
    // sleeping only observe shared state at ticks >= the limit.
    Cycle limit = cap;
    if (!wakeHeap_.empty()) {
        const Cycle t2 = wakeHeap_.front().first;
        if (t2 < cap)
            limit = c < wakeHeap_.front().second ? t2 + 1 : t2;
    }
    if (batchCap_ != 0 && start + batchCap_ < limit)
        limit = start + batchCap_;

    settlePending(c, start);
    const bool profAdv = prof::samplePoint(prof::Phase::CoreAdvance);
    prof::MaybeScope profScope(profAdv, prof::Phase::CoreAdvance);
    const OooCore::AdvanceResult res =
        cores_[c]->advance(start, limit, now_);
    coreTicks_[c] += res.ticks;
    const Cycle span = res.doneThrough - start;
    batchedCycles_ += span;
    ++horizonHist_[static_cast<std::size_t>(std::bit_width(span))];
    // Cycles the batch folded internally are machine-idle (no other
    // core was scheduled inside the window): keep the legacy
    // skipped-cycles semantics.
    ffSkipped_ += span - res.ticks;
    corePendingStart_[c] = res.doneThrough;
    frontier_ = res.doneThrough;
    pushWake(res.nextWake, c);
}

void
CmpSystem::rebuildWakeHeap()
{
    wakeHeap_.clear();
    for (unsigned c = 0; c < coreWake_.size(); ++c) {
        if (coreWake_[c] == OooCore::neverWakes)
            continue;
        // Horizons are >= now_ on every entry path (run() exits with
        // all wakes past now_; restore and the mode switches anchor
        // at now_); the clamp only defends that invariant.
        wakeHeap_.emplace_back(std::max(coreWake_[c], now_),
                               static_cast<std::uint32_t>(c));
    }
    std::make_heap(wakeHeap_.begin(), wakeHeap_.end(),
                   std::greater<>());
}

void
CmpSystem::pushWake(Cycle wake, std::uint32_t c)
{
    coreWake_[c] = wake;
    if (wake == OooCore::neverWakes)
        return;
    wakeHeap_.emplace_back(wake, c);
    std::push_heap(wakeHeap_.begin(), wakeHeap_.end(),
                   std::greater<>());
    ++horizonPushes_;
}

void
CmpSystem::settlePending(std::uint32_t c, Cycle upTo)
{
    if (corePendingStart_[c] < upTo) {
        cores_[c]->skipStalledCycles(corePendingStart_[c],
                                     upTo - corePendingStart_[c]);
        corePendingStart_[c] = upTo;
    }
}

void
CmpSystem::accountIdleGap(Cycle to)
{
    const Cycle skipped = to - frontier_;
    ffSkipped_ += skipped;
    ++ffJumps_;
    prof::add(prof::Counter::FastForwardJumps, 1);
    prof::add(prof::Counter::FastForwardCycles, skipped);
    if (events_ && events_->enabled()) {
        events_->complete(evtPid_, 0, "ff_jump",
                          static_cast<double>(frontier_),
                          static_cast<double>(skipped),
                          json::Value::object().set("cycles",
                                                    skipped));
    }
    frontier_ = to;
}

Cycle
CmpSystem::nextWakeCycle(Cycle last) const
{
    // The cached horizons are exact: each was computed by the core's
    // last real tick, and a stalled core's state cannot change, so
    // re-probing nextWakeCycle on it would return the same cycle.
    Cycle wake = OooCore::neverWakes;
    for (const Cycle w : coreWake_)
        wake = std::min(wake, w);
    if (wake <= last + 1)
        return wake; // some core runs next cycle; stop probing
    // Memory-side completions (in-flight demand and prefetch misses,
    // the channel freeing) do not by themselves change core state —
    // every consequence is precomputed into the cores' own wake-ups
    // — but bounding jumps by them keeps the horizon conservative
    // against components gaining autonomous behaviour later.
    for (const auto &mem : memSystems_)
        wake = std::min(wake, mem->nextEventCycle(last));
    wake = std::min(wake, memory_.nextEventCycle(last));
    return wake;
}

void
CmpSystem::fastForwardNow(Cycle end)
{
    // The tick at now_ - 1 just ran. Ticks strictly before the event
    // horizon are provable no-ops; a pending sample or robustness
    // event caps the jump so both fire at exactly the cycle the
    // reference loop fires them. The cores' skipped bookkeeping is
    // folded lazily by settleCores / their next real tick.
    prof::Scope profHorizon(prof::Phase::FastForwardHorizon);
    Cycle target = std::min(end, nextWakeCycle(now_ - 1));
    if (trace_)
        target = std::min(target, nextSample_);
    if (robustActive_)
        target = std::min(target, nextRobustEvent_);
    if (target <= now_)
        return;
    const Cycle skipped = target - now_;
    // Jump diagnostics go to the host-side profiler/trace-event
    // surfaces only: the reference loop takes no jumps, so folding
    // them into stats or telemetry would break bit-identity.
    prof::add(prof::Counter::FastForwardJumps, 1);
    prof::add(prof::Counter::FastForwardCycles, skipped);
    if (events_ && events_->enabled()) {
        events_->complete(evtPid_, 0, "ff_jump",
                          static_cast<double>(now_),
                          static_cast<double>(skipped),
                          json::Value::object().set("cycles",
                                                    skipped));
    }
    ffSkipped_ += skipped;
    now_ = target;
    ++ffJumps_;
}

void
CmpSystem::robustnessTick()
{
    if (robust_.fault.isSimFault() && !faultPlanted_ &&
        now_ >= robust_.fault.arg) {
        plantFault();
    }
    if (robust_.checkEnabled && now_ >= nextCheck_) {
        if (events_ && events_->enabled())
            events_->instant(evtPid_, 0, "invariant_check",
                             static_cast<double>(now_));
        checkStructuralInvariants();
        nextCheck_ += robust_.checkPeriod;
    }
    if (robust_.watchdogEnabled && now_ >= nextWatchdog_) {
        watchdogCheck();
        nextWatchdog_ += watchdogPeriod_;
    }
    if (robust_.maxCycles != 0 && now_ >= robust_.maxCycles) {
        if (events_ && events_->enabled())
            events_->instant(evtPid_, 0, "cycle_budget_exceeded",
                             static_cast<double>(now_));
        throw CycleBudgetExceeded(
            "cycle budget of " + std::to_string(robust_.maxCycles) +
            " exhausted at cycle " + std::to_string(now_) + "\n" +
            progressSnapshot());
    }
    scheduleRobustness();
}

void
CmpSystem::plantFault()
{
    switch (robust_.fault.kind) {
      case FaultKind::LruCorrupt:
          // The L3 needs two valid blocks in one set to duplicate a
          // stamp; keep retrying until the workload has filled that
          // much.
          if (!l3_->injectLruCorruption())
              return;
          warn("fault injection: corrupted L3 LRU state at cycle ",
               now_);
          break;
      case FaultKind::MshrLeak:
          memSystems_[0]->l2d().mshrs().injectLeak(now_);
          break;
      case FaultKind::ChannelStall:
          memory_.injectChannelStall(
              std::numeric_limits<Cycle>::max() / 2);
          break;
      default:
          panic("fault kind is not a simulator fault");
    }
    faultPlanted_ = true;
}

void
CmpSystem::checkStructuralInvariants() const
{
    l3_->checkStructure();
    for (const auto &mem : memSystems_) {
        mem->l1d().mshrs().checkInvariants();
        mem->l2d().mshrs().checkInvariants();
    }
}

void
CmpSystem::watchdogCheck()
{
    Counter committed = 0;
    for (const auto &core : cores_)
        committed += core->committed();
    if (committed != watchdogLastCommitted_) {
        watchdogLastCommitted_ = committed;
        watchdogLastProgress_ = now_;
    } else if (now_ - watchdogLastProgress_ >= robust_.watchdogWindow) {
        if (events_ && events_->enabled())
            events_->instant(evtPid_, 0, "watchdog_stall",
                             static_cast<double>(now_));
        throw SimulationStalled(
            "no instruction retired in " +
            std::to_string(now_ - watchdogLastProgress_) +
            " cycles (window " +
            std::to_string(robust_.watchdogWindow) + ")\n" +
            progressSnapshot());
    }

    for (unsigned c = 0; c < config_.numCores; ++c) {
        const Cycle age =
            memSystems_[c]->l2d().mshrs().oldestAge(now_);
        if (age > robust_.mshrAgeBound) {
            if (events_ && events_->enabled())
                events_->instant(evtPid_, 0, "mshr_age_bound",
                                 static_cast<double>(now_));
            throw SimulationStalled(
                "core " + std::to_string(c) +
                " has an L2D MSHR entry outstanding for " +
                std::to_string(age) + " cycles (bound " +
                std::to_string(robust_.mshrAgeBound) + ")\n" +
                progressSnapshot());
        }
    }
}

std::string
CmpSystem::progressSnapshot() const
{
    std::ostringstream out;
    out << "progress snapshot at cycle " << now_ << ":";
    for (unsigned c = 0; c < config_.numCores; ++c) {
        auto &mshrs = memSystems_[c]->l2d().mshrs();
        out << "\n  core" << c << ": committed="
            << cores_[c]->committed()
            << " l2d_mshr_in_flight=" << mshrs.inFlight(now_)
            << " l2d_mshr_oldest_age=" << mshrs.oldestAge(now_);
    }
    out << "\n  memory: busy_until=" << memory_.busyUntil()
        << " fetches=" << memory_.fetches()
        << " queue_cycles=" << memory_.queueCycles();
    return out.str();
}

void
CmpSystem::attachTelemetry(TraceSink *sink, Cycle period)
{
    if (adaptive_) {
        adaptive_->engine().setRepartitionObserver(
            sink == nullptr
                ? std::function<void(const RepartitionEvent &)>{}
                : [this](const RepartitionEvent &event) {
                      emitRepartition(event);
                  });
    }
    trace_ = sink;
    if (sink == nullptr)
        return;
    fatal_if(period == 0, "telemetry sample period must be positive");
    tracePeriod_ = period;
    nextSample_ = now_ + period;

    samplePrevCycle_ = now_;
    samplePrevCommitted_.assign(config_.numCores, 0);
    samplePrevL3Access_.assign(config_.numCores, 0);
    samplePrevL3Miss_.assign(config_.numCores, 0);
    samplePrevL3Local_.assign(config_.numCores, 0);
    samplePrevL3Remote_.assign(config_.numCores, 0);
    for (unsigned c = 0; c < config_.numCores; ++c) {
        const auto core = static_cast<CoreId>(c);
        samplePrevCommitted_[c] = cores_[c]->committed();
        samplePrevL3Access_[c] = memSystems_[c]->l3DataAccesses();
        samplePrevL3Miss_[c] = memSystems_[c]->l3DataMisses();
        if (adaptive_) {
            samplePrevL3Local_[c] = adaptive_->localHitsOf(core);
            samplePrevL3Remote_[c] = adaptive_->remoteHitsOf(core);
            samplePrevL3Miss_[c] = adaptive_->missesOf(core);
        }
    }
    samplePrevFetches_ = memory_.fetches();
    samplePrevWritebacks_ = memory_.writebacks();
    samplePrevQueueCycles_ = memory_.queueCycles();

    json::Value meta = json::Value::object();
    meta.set("type", "meta");
    meta.set("cycle", now_);
    meta.set("scheme", l3_->schemeName());
    meta.set("cores", static_cast<std::uint64_t>(config_.numCores));
    meta.set("period", period);
    trace_->write(meta);
    prof::add(prof::Counter::TraceRecords, 1);
}

void
CmpSystem::emitSample()
{
    prof::Scope profSample(prof::Phase::TelemetrySample);
    const Cycle span = now_ - samplePrevCycle_;
    json::Value record = json::Value::object();
    record.set("type", "sample");
    record.set("cycle", now_);

    json::Value cores = json::Value::array();
    for (unsigned c = 0; c < config_.numCores; ++c) {
        const auto core = static_cast<CoreId>(c);
        json::Value entry = json::Value::object();

        const Counter committed = cores_[c]->committed();
        entry.set("ipc",
                  span == 0 ? 0.0
                            : static_cast<double>(
                                  committed - samplePrevCommitted_[c]) /
                                  static_cast<double>(span));
        samplePrevCommitted_[c] = committed;

        const Counter accesses = memSystems_[c]->l3DataAccesses();
        entry.set("l3_access", accesses - samplePrevL3Access_[c]);
        samplePrevL3Access_[c] = accesses;

        if (adaptive_) {
            const Counter local = adaptive_->localHitsOf(core);
            const Counter remote = adaptive_->remoteHitsOf(core);
            const Counter miss = adaptive_->missesOf(core);
            entry.set("l3_local", local - samplePrevL3Local_[c]);
            entry.set("l3_remote", remote - samplePrevL3Remote_[c]);
            entry.set("l3_miss", miss - samplePrevL3Miss_[c]);
            samplePrevL3Local_[c] = local;
            samplePrevL3Remote_[c] = remote;
            samplePrevL3Miss_[c] = miss;
            entry.set("quota", static_cast<std::uint64_t>(
                                   adaptive_->engine().quota(core)));
        } else {
            const Counter miss = memSystems_[c]->l3DataMisses();
            entry.set("l3_miss", miss - samplePrevL3Miss_[c]);
            samplePrevL3Miss_[c] = miss;
        }

        // Occupancy snapshot of the L2D MSHR file (the bound on this
        // core's outstanding L3 traffic). inFlight only prunes
        // entries the next access would prune anyway.
        entry.set("mshr",
                  static_cast<std::uint64_t>(
                      memSystems_[c]->l2d().mshrs().inFlight(now_)));
        cores.append(std::move(entry));
    }
    record.set("cores", std::move(cores));

    json::Value mem = json::Value::object();
    const Counter fetches = memory_.fetches();
    const Counter writebacks = memory_.writebacks();
    const Counter queued = memory_.queueCycles();
    mem.set("fetches", fetches - samplePrevFetches_);
    mem.set("writebacks", writebacks - samplePrevWritebacks_);
    mem.set("queue_cycles", queued - samplePrevQueueCycles_);
    // Fraction of the interval the channel spent transferring
    // blocks: fetches * slot length over the interval, capped at 1.
    const double busy =
        span == 0 ? 0.0
                  : static_cast<double>(fetches - samplePrevFetches_) *
                        static_cast<double>(memory_.transferSlot()) /
                        static_cast<double>(span);
    mem.set("busy_frac", busy > 1.0 ? 1.0 : busy);
    samplePrevFetches_ = fetches;
    samplePrevWritebacks_ = writebacks;
    samplePrevQueueCycles_ = queued;
    record.set("mem", std::move(mem));

    samplePrevCycle_ = now_;
    trace_->write(record);
    prof::add(prof::Counter::TraceRecords, 1);

    // The add-on observability surfaces ride the sample boundary:
    // the heatmap record follows its sample in the same JSONL
    // stream, and the counter tracks land at the same cycle on the
    // trace-event log. Both read counters the simulation maintains
    // anyway, so enabling them cannot change simulated behaviour.
    if (heatBuckets_ != 0)
        emitHeatmap();
    if (events_ && events_->enabled())
        emitCounterEvents();
}

bool
CmpSystem::enableHeatmap(unsigned buckets)
{
    fatal_if(buckets == 0, "heatmap bucket count must be positive");
    if (!l3_->enableHeatmap())
        return false;
    const L3Heatmap &heat = *l3_->heatmap();
    heatBuckets_ = std::min(buckets, heat.sets());
    heatPrevAccess_.assign(std::size_t(heat.banks()) * heatBuckets_,
                           0);
    heatPrevMiss_.assign(std::size_t(heat.banks()) * heatBuckets_, 0);
    return true;
}

void
CmpSystem::emitHeatmap()
{
    prof::Scope profHeat(prof::Phase::HeatmapSample);
    const L3Heatmap &heat = *l3_->heatmap();
    const unsigned banks = heat.banks();
    const unsigned sets = heat.sets();

    json::Value record = json::Value::object();
    record.set("type", "heatmap");
    record.set("cycle", now_);
    record.set("scheme", l3_->schemeName());
    record.set("banks", static_cast<std::uint64_t>(banks));
    record.set("sets", static_cast<std::uint64_t>(sets));
    record.set("buckets", static_cast<std::uint64_t>(heatBuckets_));

    // Bucketize the running totals and report the delta since the
    // previous heatmap record, so each record maps the *interval*
    // (like the sample records) rather than ever-growing sums.
    auto grid = [&](const std::vector<std::uint64_t> &totals,
                    std::vector<std::uint64_t> &prev) {
        json::Value rows = json::Value::array();
        for (unsigned b = 0; b < banks; ++b) {
            json::Value row = json::Value::array();
            for (unsigned k = 0; k < heatBuckets_; ++k) {
                const std::size_t setLo =
                    std::size_t(k) * sets / heatBuckets_;
                const std::size_t setHi =
                    std::size_t(k + 1) * sets / heatBuckets_;
                std::uint64_t sum = 0;
                for (std::size_t s = setLo; s < setHi; ++s)
                    sum += totals[std::size_t(b) * sets + s];
                const std::size_t i =
                    std::size_t(b) * heatBuckets_ + k;
                row.append(sum - prev[i]);
                prev[i] = sum;
            }
            rows.append(std::move(row));
        }
        return rows;
    };
    record.set("access", grid(heat.accesses(), heatPrevAccess_));
    record.set("miss", grid(heat.misses(), heatPrevMiss_));

    json::Value occ = json::Value::array();
    for (const auto &hist : l3_->occupancyHistograms()) {
        json::Value row = json::Value::array();
        for (const std::uint64_t n : hist)
            row.append(n);
        occ.append(std::move(row));
    }
    record.set("occupancy", std::move(occ));

    trace_->write(record);
    prof::add(prof::Counter::TraceRecords, 1);
    prof::add(prof::Counter::HeatmapRecords, 1);
}

void
CmpSystem::attachTraceEvents(TraceEventLog *log,
                             const std::string &label)
{
    events_ = log;
    if (log == nullptr)
        return;
    evtPid_ = log->newProcess("sim:" + label);
    evtPrevMshrStalls_.assign(config_.numCores, 0);
    for (unsigned c = 0; c < config_.numCores; ++c) {
        evtPrevMshrStalls_[c] =
            memSystems_[c]->l2d().mshrs().structuralStalls();
    }
}

void
CmpSystem::emitCounterEvents()
{
    const double ts = static_cast<double>(now_);
    json::Value ipc = json::Value::object();
    json::Value stalls = json::Value::object();
    for (unsigned c = 0; c < config_.numCores; ++c) {
        const std::string key = "core" + std::to_string(c);
        ipc.set(key, ipcOf(static_cast<CoreId>(c)));
        const Counter total =
            memSystems_[c]->l2d().mshrs().structuralStalls();
        stalls.set(key, total - evtPrevMshrStalls_[c]);
        evtPrevMshrStalls_[c] = total;
    }
    events_->counter(evtPid_, 0, "ipc", ts, std::move(ipc));
    events_->counter(evtPid_, 0, "mshr_full_stalls", ts,
                     std::move(stalls));

    if (adaptive_) {
        json::Value quota = json::Value::object();
        for (unsigned c = 0; c < config_.numCores; ++c) {
            quota.set("core" + std::to_string(c),
                      static_cast<std::uint64_t>(
                          adaptive_->engine().quota(
                              static_cast<CoreId>(c))));
        }
        events_->counter(evtPid_, 0, "quota", ts, std::move(quota));
    }
}

void
CmpSystem::emitRepartition(const RepartitionEvent &event)
{
    json::Value record = json::Value::object();
    record.set("type", "repartition");
    record.set("cycle", now_);
    record.set("epoch", event.epoch);
    record.set("gainer", event.gainer);
    record.set("loser", event.loser);
    record.set("moved", event.moved);
    record.set("scaled_gain", event.scaledGain);

    const auto unsignedArray = [](const std::vector<unsigned> &vals) {
        json::Value arr = json::Value::array();
        for (const unsigned v : vals)
            arr.append(static_cast<std::uint64_t>(v));
        return arr;
    };
    const auto counterArray = [](const std::vector<Counter> &vals) {
        json::Value arr = json::Value::array();
        for (const Counter v : vals)
            arr.append(v);
        return arr;
    };
    record.set("quota_before", unsignedArray(event.quotaBefore));
    record.set("quota_after", unsignedArray(event.quotaAfter));
    record.set("shadow_hits", counterArray(event.shadowHits));
    record.set("lru_hits", counterArray(event.lruHits));
    trace_->write(record);
    prof::add(prof::Counter::TraceRecords, 1);

    if (events_ && events_->enabled()) {
        json::Value args = json::Value::object();
        args.set("epoch", event.epoch);
        args.set("gainer", event.gainer);
        args.set("loser", event.loser);
        args.set("moved", event.moved);
        args.set("quota_before", unsignedArray(event.quotaBefore));
        args.set("quota_after", unsignedArray(event.quotaAfter));
        events_->instant(evtPid_, 0, "repartition",
                         static_cast<double>(now_), std::move(args));
    }
}

void
CmpSystem::checkpoint(Serializer &s) const
{
    s.putTag(fourcc("SYST"));
    s.putU64(now_);
    s.putU64(statsZero_);
    s.putVecU64(committedZero_);
    s.putVecU64(l3AccessZero_);
    for (const auto &workload : workloads_)
        workload->checkpoint(s);
    l3_->checkpoint(s);
    memory_.checkpoint(s);
    for (unsigned c = 0; c < config_.numCores; ++c) {
        memSystems_[c]->checkpoint(s);
        cores_[c]->checkpoint(s);
    }
    root_.serialize(s);
}

void
CmpSystem::restore(Deserializer &d)
{
    d.expectTag(fourcc("SYST"), "cmp system");
    now_ = d.getU64();
    statsZero_ = d.getU64();
    committedZero_ =
        d.getVecU64(config_.numCores, "committed baselines");
    l3AccessZero_ =
        d.getVecU64(config_.numCores, "L3 access baselines");
    for (auto &workload : workloads_)
        workload->restore(d);
    l3_->restore(d);
    memory_.restore(d);
    for (unsigned c = 0; c < config_.numCores; ++c) {
        memSystems_[c]->restore(d);
        cores_[c]->restore(d);
    }
    root_.deserialize(d);
    // The watchdog and periodic checks were baselined at cycle 0 in
    // the constructor; re-anchor them at the restored cycle. Same
    // for the per-core skip horizons: force a real tick at now_
    // (harmless if the core is still stalled — a stalled tick
    // records exactly what the fold would) and clear pending spans.
    setRobustness(robust_);
    std::fill(coreWake_.begin(), coreWake_.end(), now_);
    std::fill(corePendingStart_.begin(), corePendingStart_.end(),
              now_);
}

void
CmpSystem::resetStats()
{
    statsZero_ = now_;
    for (unsigned c = 0; c < config_.numCores; ++c) {
        committedZero_[c] = cores_[c]->committed();
        l3AccessZero_[c] = memSystems_[c]->l3DataAccesses();
    }
}

Counter
CmpSystem::coreTicksExecuted(CoreId core) const
{
    panic_if(core < 0 ||
                 static_cast<unsigned>(core) >= coreTicks_.size(),
             "core id out of range");
    return coreTicks_[static_cast<unsigned>(core)];
}

double
CmpSystem::ipcOf(CoreId core) const
{
    panic_if(core < 0 ||
                 static_cast<unsigned>(core) >= config_.numCores,
             "core id out of range");
    const Cycle cycles = measuredCycles();
    if (cycles == 0)
        return 0.0;
    const Counter insts =
        cores_[static_cast<unsigned>(core)]->committed() -
        committedZero_[static_cast<unsigned>(core)];
    return static_cast<double>(insts) / static_cast<double>(cycles);
}

std::vector<double>
CmpSystem::ipcs() const
{
    std::vector<double> out;
    out.reserve(config_.numCores);
    for (unsigned c = 0; c < config_.numCores; ++c)
        out.push_back(ipcOf(static_cast<CoreId>(c)));
    return out;
}

double
CmpSystem::l3AccessesPerKilocycle(CoreId core) const
{
    const Cycle cycles = measuredCycles();
    if (cycles == 0)
        return 0.0;
    const Counter accesses =
        memSystems_[static_cast<unsigned>(core)]->l3DataAccesses() -
        l3AccessZero_[static_cast<unsigned>(core)];
    return 1000.0 * static_cast<double>(accesses) /
           static_cast<double>(cycles);
}

OooCore &
CmpSystem::coreAt(CoreId core)
{
    panic_if(core < 0 ||
                 static_cast<unsigned>(core) >= cores_.size(),
             "core id out of range");
    return *cores_[static_cast<unsigned>(core)];
}

MemorySystem &
CmpSystem::memOf(CoreId core)
{
    panic_if(core < 0 ||
                 static_cast<unsigned>(core) >= memSystems_.size(),
             "core id out of range");
    return *memSystems_[static_cast<unsigned>(core)];
}

} // namespace nuca
