#include "sim/cmp_system.hh"

#include "base/logging.hh"
#include "nuca/private_l3.hh"
#include "nuca/random_replacement_l3.hh"
#include "nuca/shared_l3.hh"

namespace nuca {

namespace {

MainMemoryParams
memParamsFor(const SystemConfig &config)
{
    MainMemoryParams p;
    p.firstChunkLatency = config.scheme == L3Scheme::Private
                              ? config.memFirstChunkPrivate
                              : config.memFirstChunkShared;
    return p;
}

} // namespace

CmpSystem::CmpSystem(const SystemConfig &config,
                     const std::vector<WorkloadProfile> &apps,
                     std::uint64_t seed)
    : config_(config),
      root_("system"),
      memory_(root_, "memory", memParamsFor(config))
{
    fatal_if(apps.size() != config_.numCores,
             "need exactly one workload per core (", config_.numCores,
             " cores, ", apps.size(), " workloads)");
    for (unsigned c = 0; c < config_.numCores; ++c) {
        workloads_.push_back(std::make_unique<SynthWorkload>(
            apps[c], static_cast<CoreId>(c),
            seed + c * 0x9e3779b9ull));
    }
    buildSystem();
}

CmpSystem::CmpSystem(const SystemConfig &config,
                     std::vector<std::unique_ptr<InstSource>> sources)
    : config_(config),
      root_("system"),
      memory_(root_, "memory", memParamsFor(config))
{
    fatal_if(sources.size() != config_.numCores,
             "need exactly one instruction source per core (",
             config_.numCores, " cores, ", sources.size(),
             " sources)");
    for (auto &source : sources) {
        fatal_if(source == nullptr, "null instruction source");
        workloads_.push_back(std::move(source));
    }
    buildSystem();
}

void
CmpSystem::buildSystem()
{
    switch (config_.scheme) {
      case L3Scheme::Private: {
          PrivateL3Params p;
          p.numCores = config_.numCores;
          p.sizePerCoreBytes = config_.l3SizePerCoreBytes;
          p.assoc = config_.l3LocalAssoc;
          p.hitLatency = config_.l3LocalLatency;
          p.policy = config_.l3ReplPolicy;
          l3_ = std::make_unique<PrivateL3>(root_, p, memory_);
          break;
      }
      case L3Scheme::Shared: {
          SharedL3Params p;
          p.numCores = config_.numCores;
          p.sizeBytes = config_.l3SizePerCoreBytes * config_.numCores;
          p.assoc = config_.l3LocalAssoc * config_.numCores;
          p.hitLatency = config_.l3SharedLatency;
          p.policy = config_.l3ReplPolicy;
          l3_ = std::make_unique<SharedL3>(root_, p, memory_);
          break;
      }
      case L3Scheme::Adaptive: {
          AdaptiveNucaParams p;
          p.numCores = config_.numCores;
          p.sizePerCoreBytes = config_.l3SizePerCoreBytes;
          p.localAssoc = config_.l3LocalAssoc;
          p.localHitLatency = config_.l3LocalLatency;
          p.remoteHitLatency = config_.l3SharedLatency;
          p.epochMisses = config_.epochMisses;
          p.shadowSampleShift = config_.shadowSampleShift;
          p.adaptationEnabled = config_.adaptationEnabled;
          p.allowRemotePrivateHits = config_.coherentSharing;
          auto adaptive =
              std::make_unique<AdaptiveNuca>(root_, p, memory_);
          adaptive_ = adaptive.get();
          l3_ = std::move(adaptive);
          break;
      }
      case L3Scheme::RandomReplacement: {
          RandomReplacementL3Params p;
          p.numCores = config_.numCores;
          p.sizePerCoreBytes = config_.l3SizePerCoreBytes;
          p.assoc = config_.l3LocalAssoc;
          p.localHitLatency = config_.l3LocalLatency;
          p.remoteHitLatency = config_.l3SharedLatency;
          p.seed = config_.schemeSeed;
          l3_ = std::make_unique<RandomReplacementL3>(root_, p,
                                                      memory_);
          break;
      }
    }

    if (config_.coherentSharing)
        coherence_ = std::make_unique<CoherenceHub>(root_);

    for (unsigned c = 0; c < config_.numCores; ++c) {
        const auto core = static_cast<CoreId>(c);
        memSystems_.push_back(std::make_unique<MemorySystem>(
            root_, "core" + std::to_string(c) + ".mem", core,
            config_.coreMem, *l3_));
        if (coherence_) {
            coherence_->attach(memSystems_.back().get());
            memSystems_.back()->setCoherenceHub(coherence_.get());
        }
        cores_.push_back(std::make_unique<OooCore>(
            root_, "core" + std::to_string(c), core, config_.core,
            *memSystems_.back(), *workloads_[c]));
    }

    committedZero_.assign(config_.numCores, 0);
    l3AccessZero_.assign(config_.numCores, 0);
}

void
CmpSystem::run(Cycle cycles)
{
    const Cycle end = now_ + cycles;
    while (now_ < end) {
        for (auto &core : cores_)
            core->tick(now_);
        ++now_;
        if (trace_ && now_ >= nextSample_) {
            emitSample();
            nextSample_ += tracePeriod_;
        }
    }
}

void
CmpSystem::attachTelemetry(TraceSink *sink, Cycle period)
{
    if (adaptive_) {
        adaptive_->engine().setRepartitionObserver(
            sink == nullptr
                ? std::function<void(const RepartitionEvent &)>{}
                : [this](const RepartitionEvent &event) {
                      emitRepartition(event);
                  });
    }
    trace_ = sink;
    if (sink == nullptr)
        return;
    fatal_if(period == 0, "telemetry sample period must be positive");
    tracePeriod_ = period;
    nextSample_ = now_ + period;

    samplePrevCycle_ = now_;
    samplePrevCommitted_.assign(config_.numCores, 0);
    samplePrevL3Access_.assign(config_.numCores, 0);
    samplePrevL3Miss_.assign(config_.numCores, 0);
    samplePrevL3Local_.assign(config_.numCores, 0);
    samplePrevL3Remote_.assign(config_.numCores, 0);
    for (unsigned c = 0; c < config_.numCores; ++c) {
        const auto core = static_cast<CoreId>(c);
        samplePrevCommitted_[c] = cores_[c]->committed();
        samplePrevL3Access_[c] = memSystems_[c]->l3DataAccesses();
        samplePrevL3Miss_[c] = memSystems_[c]->l3DataMisses();
        if (adaptive_) {
            samplePrevL3Local_[c] = adaptive_->localHitsOf(core);
            samplePrevL3Remote_[c] = adaptive_->remoteHitsOf(core);
            samplePrevL3Miss_[c] = adaptive_->missesOf(core);
        }
    }
    samplePrevFetches_ = memory_.fetches();
    samplePrevWritebacks_ = memory_.writebacks();
    samplePrevQueueCycles_ = memory_.queueCycles();

    json::Value meta = json::Value::object();
    meta.set("type", "meta");
    meta.set("cycle", now_);
    meta.set("scheme", l3_->schemeName());
    meta.set("cores", static_cast<std::uint64_t>(config_.numCores));
    meta.set("period", period);
    trace_->write(meta);
}

void
CmpSystem::emitSample()
{
    const Cycle span = now_ - samplePrevCycle_;
    json::Value record = json::Value::object();
    record.set("type", "sample");
    record.set("cycle", now_);

    json::Value cores = json::Value::array();
    for (unsigned c = 0; c < config_.numCores; ++c) {
        const auto core = static_cast<CoreId>(c);
        json::Value entry = json::Value::object();

        const Counter committed = cores_[c]->committed();
        entry.set("ipc",
                  span == 0 ? 0.0
                            : static_cast<double>(
                                  committed - samplePrevCommitted_[c]) /
                                  static_cast<double>(span));
        samplePrevCommitted_[c] = committed;

        const Counter accesses = memSystems_[c]->l3DataAccesses();
        entry.set("l3_access", accesses - samplePrevL3Access_[c]);
        samplePrevL3Access_[c] = accesses;

        if (adaptive_) {
            const Counter local = adaptive_->localHitsOf(core);
            const Counter remote = adaptive_->remoteHitsOf(core);
            const Counter miss = adaptive_->missesOf(core);
            entry.set("l3_local", local - samplePrevL3Local_[c]);
            entry.set("l3_remote", remote - samplePrevL3Remote_[c]);
            entry.set("l3_miss", miss - samplePrevL3Miss_[c]);
            samplePrevL3Local_[c] = local;
            samplePrevL3Remote_[c] = remote;
            samplePrevL3Miss_[c] = miss;
            entry.set("quota", static_cast<std::uint64_t>(
                                   adaptive_->engine().quota(core)));
        } else {
            const Counter miss = memSystems_[c]->l3DataMisses();
            entry.set("l3_miss", miss - samplePrevL3Miss_[c]);
            samplePrevL3Miss_[c] = miss;
        }

        // Occupancy snapshot of the L2D MSHR file (the bound on this
        // core's outstanding L3 traffic). inFlight only prunes
        // entries the next access would prune anyway.
        entry.set("mshr",
                  static_cast<std::uint64_t>(
                      memSystems_[c]->l2d().mshrs().inFlight(now_)));
        cores.append(std::move(entry));
    }
    record.set("cores", std::move(cores));

    json::Value mem = json::Value::object();
    const Counter fetches = memory_.fetches();
    const Counter writebacks = memory_.writebacks();
    const Counter queued = memory_.queueCycles();
    mem.set("fetches", fetches - samplePrevFetches_);
    mem.set("writebacks", writebacks - samplePrevWritebacks_);
    mem.set("queue_cycles", queued - samplePrevQueueCycles_);
    // Fraction of the interval the channel spent transferring
    // blocks: fetches * slot length over the interval, capped at 1.
    const double busy =
        span == 0 ? 0.0
                  : static_cast<double>(fetches - samplePrevFetches_) *
                        static_cast<double>(memory_.transferSlot()) /
                        static_cast<double>(span);
    mem.set("busy_frac", busy > 1.0 ? 1.0 : busy);
    samplePrevFetches_ = fetches;
    samplePrevWritebacks_ = writebacks;
    samplePrevQueueCycles_ = queued;
    record.set("mem", std::move(mem));

    samplePrevCycle_ = now_;
    trace_->write(record);
}

void
CmpSystem::emitRepartition(const RepartitionEvent &event)
{
    json::Value record = json::Value::object();
    record.set("type", "repartition");
    record.set("cycle", now_);
    record.set("epoch", event.epoch);
    record.set("gainer", event.gainer);
    record.set("loser", event.loser);
    record.set("moved", event.moved);
    record.set("scaled_gain", event.scaledGain);

    const auto unsignedArray = [](const std::vector<unsigned> &vals) {
        json::Value arr = json::Value::array();
        for (const unsigned v : vals)
            arr.append(static_cast<std::uint64_t>(v));
        return arr;
    };
    const auto counterArray = [](const std::vector<Counter> &vals) {
        json::Value arr = json::Value::array();
        for (const Counter v : vals)
            arr.append(v);
        return arr;
    };
    record.set("quota_before", unsignedArray(event.quotaBefore));
    record.set("quota_after", unsignedArray(event.quotaAfter));
    record.set("shadow_hits", counterArray(event.shadowHits));
    record.set("lru_hits", counterArray(event.lruHits));
    trace_->write(record);
}

void
CmpSystem::resetStats()
{
    statsZero_ = now_;
    for (unsigned c = 0; c < config_.numCores; ++c) {
        committedZero_[c] = cores_[c]->committed();
        l3AccessZero_[c] = memSystems_[c]->l3DataAccesses();
    }
}

double
CmpSystem::ipcOf(CoreId core) const
{
    panic_if(core < 0 ||
                 static_cast<unsigned>(core) >= config_.numCores,
             "core id out of range");
    const Cycle cycles = measuredCycles();
    if (cycles == 0)
        return 0.0;
    const Counter insts =
        cores_[static_cast<unsigned>(core)]->committed() -
        committedZero_[static_cast<unsigned>(core)];
    return static_cast<double>(insts) / static_cast<double>(cycles);
}

std::vector<double>
CmpSystem::ipcs() const
{
    std::vector<double> out;
    out.reserve(config_.numCores);
    for (unsigned c = 0; c < config_.numCores; ++c)
        out.push_back(ipcOf(static_cast<CoreId>(c)));
    return out;
}

double
CmpSystem::l3AccessesPerKilocycle(CoreId core) const
{
    const Cycle cycles = measuredCycles();
    if (cycles == 0)
        return 0.0;
    const Counter accesses =
        memSystems_[static_cast<unsigned>(core)]->l3DataAccesses() -
        l3AccessZero_[static_cast<unsigned>(core)];
    return 1000.0 * static_cast<double>(accesses) /
           static_cast<double>(cycles);
}

OooCore &
CmpSystem::coreAt(CoreId core)
{
    panic_if(core < 0 ||
                 static_cast<unsigned>(core) >= cores_.size(),
             "core id out of range");
    return *cores_[static_cast<unsigned>(core)];
}

MemorySystem &
CmpSystem::memOf(CoreId core)
{
    panic_if(core < 0 ||
                 static_cast<unsigned>(core) >= memSystems_.size(),
             "core id out of range");
    return *memSystems_[static_cast<unsigned>(core)];
}

} // namespace nuca
