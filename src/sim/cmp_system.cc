#include "sim/cmp_system.hh"

#include "base/logging.hh"
#include "nuca/private_l3.hh"
#include "nuca/random_replacement_l3.hh"
#include "nuca/shared_l3.hh"

namespace nuca {

namespace {

MainMemoryParams
memParamsFor(const SystemConfig &config)
{
    MainMemoryParams p;
    p.firstChunkLatency = config.scheme == L3Scheme::Private
                              ? config.memFirstChunkPrivate
                              : config.memFirstChunkShared;
    return p;
}

} // namespace

CmpSystem::CmpSystem(const SystemConfig &config,
                     const std::vector<WorkloadProfile> &apps,
                     std::uint64_t seed)
    : config_(config),
      root_("system"),
      memory_(root_, "memory", memParamsFor(config))
{
    fatal_if(apps.size() != config_.numCores,
             "need exactly one workload per core (", config_.numCores,
             " cores, ", apps.size(), " workloads)");
    for (unsigned c = 0; c < config_.numCores; ++c) {
        workloads_.push_back(std::make_unique<SynthWorkload>(
            apps[c], static_cast<CoreId>(c),
            seed + c * 0x9e3779b9ull));
    }
    buildSystem();
}

CmpSystem::CmpSystem(const SystemConfig &config,
                     std::vector<std::unique_ptr<InstSource>> sources)
    : config_(config),
      root_("system"),
      memory_(root_, "memory", memParamsFor(config))
{
    fatal_if(sources.size() != config_.numCores,
             "need exactly one instruction source per core (",
             config_.numCores, " cores, ", sources.size(),
             " sources)");
    for (auto &source : sources) {
        fatal_if(source == nullptr, "null instruction source");
        workloads_.push_back(std::move(source));
    }
    buildSystem();
}

void
CmpSystem::buildSystem()
{
    switch (config_.scheme) {
      case L3Scheme::Private: {
          PrivateL3Params p;
          p.numCores = config_.numCores;
          p.sizePerCoreBytes = config_.l3SizePerCoreBytes;
          p.assoc = config_.l3LocalAssoc;
          p.hitLatency = config_.l3LocalLatency;
          p.policy = config_.l3ReplPolicy;
          l3_ = std::make_unique<PrivateL3>(root_, p, memory_);
          break;
      }
      case L3Scheme::Shared: {
          SharedL3Params p;
          p.numCores = config_.numCores;
          p.sizeBytes = config_.l3SizePerCoreBytes * config_.numCores;
          p.assoc = config_.l3LocalAssoc * config_.numCores;
          p.hitLatency = config_.l3SharedLatency;
          p.policy = config_.l3ReplPolicy;
          l3_ = std::make_unique<SharedL3>(root_, p, memory_);
          break;
      }
      case L3Scheme::Adaptive: {
          AdaptiveNucaParams p;
          p.numCores = config_.numCores;
          p.sizePerCoreBytes = config_.l3SizePerCoreBytes;
          p.localAssoc = config_.l3LocalAssoc;
          p.localHitLatency = config_.l3LocalLatency;
          p.remoteHitLatency = config_.l3SharedLatency;
          p.epochMisses = config_.epochMisses;
          p.shadowSampleShift = config_.shadowSampleShift;
          p.adaptationEnabled = config_.adaptationEnabled;
          p.allowRemotePrivateHits = config_.coherentSharing;
          auto adaptive =
              std::make_unique<AdaptiveNuca>(root_, p, memory_);
          adaptive_ = adaptive.get();
          l3_ = std::move(adaptive);
          break;
      }
      case L3Scheme::RandomReplacement: {
          RandomReplacementL3Params p;
          p.numCores = config_.numCores;
          p.sizePerCoreBytes = config_.l3SizePerCoreBytes;
          p.assoc = config_.l3LocalAssoc;
          p.localHitLatency = config_.l3LocalLatency;
          p.remoteHitLatency = config_.l3SharedLatency;
          p.seed = config_.schemeSeed;
          l3_ = std::make_unique<RandomReplacementL3>(root_, p,
                                                      memory_);
          break;
      }
    }

    if (config_.coherentSharing)
        coherence_ = std::make_unique<CoherenceHub>(root_);

    for (unsigned c = 0; c < config_.numCores; ++c) {
        const auto core = static_cast<CoreId>(c);
        memSystems_.push_back(std::make_unique<MemorySystem>(
            root_, "core" + std::to_string(c) + ".mem", core,
            config_.coreMem, *l3_));
        if (coherence_) {
            coherence_->attach(memSystems_.back().get());
            memSystems_.back()->setCoherenceHub(coherence_.get());
        }
        cores_.push_back(std::make_unique<OooCore>(
            root_, "core" + std::to_string(c), core, config_.core,
            *memSystems_.back(), *workloads_[c]));
    }

    committedZero_.assign(config_.numCores, 0);
    l3AccessZero_.assign(config_.numCores, 0);
}

void
CmpSystem::run(Cycle cycles)
{
    const Cycle end = now_ + cycles;
    while (now_ < end) {
        for (auto &core : cores_)
            core->tick(now_);
        ++now_;
    }
}

void
CmpSystem::resetStats()
{
    statsZero_ = now_;
    for (unsigned c = 0; c < config_.numCores; ++c) {
        committedZero_[c] = cores_[c]->committed();
        l3AccessZero_[c] = memSystems_[c]->l3DataAccesses();
    }
}

double
CmpSystem::ipcOf(CoreId core) const
{
    panic_if(core < 0 ||
                 static_cast<unsigned>(core) >= config_.numCores,
             "core id out of range");
    const Cycle cycles = measuredCycles();
    if (cycles == 0)
        return 0.0;
    const Counter insts =
        cores_[static_cast<unsigned>(core)]->committed() -
        committedZero_[static_cast<unsigned>(core)];
    return static_cast<double>(insts) / static_cast<double>(cycles);
}

std::vector<double>
CmpSystem::ipcs() const
{
    std::vector<double> out;
    out.reserve(config_.numCores);
    for (unsigned c = 0; c < config_.numCores; ++c)
        out.push_back(ipcOf(static_cast<CoreId>(c)));
    return out;
}

double
CmpSystem::l3AccessesPerKilocycle(CoreId core) const
{
    const Cycle cycles = measuredCycles();
    if (cycles == 0)
        return 0.0;
    const Counter accesses =
        memSystems_[static_cast<unsigned>(core)]->l3DataAccesses() -
        l3AccessZero_[static_cast<unsigned>(core)];
    return 1000.0 * static_cast<double>(accesses) /
           static_cast<double>(cycles);
}

OooCore &
CmpSystem::coreAt(CoreId core)
{
    panic_if(core < 0 ||
                 static_cast<unsigned>(core) >= cores_.size(),
             "core id out of range");
    return *cores_[static_cast<unsigned>(core)];
}

MemorySystem &
CmpSystem::memOf(CoreId core)
{
    panic_if(core < 0 ||
                 static_cast<unsigned>(core) >= memSystems_.size(),
             "core id out of range");
    return *memSystems_[static_cast<unsigned>(core)];
}

} // namespace nuca
