#include "sim/experiment.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <memory>

#include "base/logging.hh"
#include "base/profiler.hh"
#include "base/random.hh"
#include "serialize/checkpoint_io.hh"
#include "sim/checkpoint.hh"
#include "sim/cmp_system.hh"
#include "sim/proc_pool.hh"
#include "sim/robustness.hh"
#include "sim/telemetry.hh"
#include "workload/spec_profiles.hh"

namespace nuca {

std::uint64_t
envOr(const char *name, std::uint64_t def)
{
    const char *value = std::getenv(name);
    if (value == nullptr || *value == '\0')
        return def;
    // strtoull silently wraps negative input ("-1" parses to
    // 2^64-1, which once sent a sweep off to run 18 quintillion
    // mixes) and saturates on overflow; reject both explicitly.
    const char *digits = value;
    while (std::isspace(static_cast<unsigned char>(*digits)))
        ++digits;
    fatal_if(*digits == '-', "environment variable ", name,
             " must be non-negative: '", value, "'");
    errno = 0;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(digits, &end, 10);
    fatal_if(end == digits || *end != '\0',
             "environment variable ", name,
             " is not a number: '", value, "'");
    fatal_if(errno == ERANGE, "environment variable ", name,
             " overflows 64 bits: '", value, "'");
    return parsed;
}

std::string
envString(const char *name)
{
    const char *value = std::getenv(name);
    return value == nullptr ? std::string() : std::string(value);
}

SimWindow
SimWindow::fromEnv(Cycle warmup_default, Cycle measure_default)
{
    SimWindow w;
    w.warmupCycles = envOr("REPRO_WARMUP_CYCLES", warmup_default);
    w.measureCycles = envOr("REPRO_MEASURE_CYCLES", measure_default);
    return w;
}

std::vector<ExperimentSpec>
makeMixes(const std::vector<std::string> &pool, unsigned count,
          unsigned apps_per_mix, std::uint64_t seed)
{
    fatal_if(pool.empty(), "empty benchmark pool");
    Rng rng(seed);
    std::vector<ExperimentSpec> mixes;
    mixes.reserve(count);
    for (unsigned i = 0; i < count; ++i) {
        ExperimentSpec spec;
        spec.apps.reserve(apps_per_mix);
        for (unsigned a = 0; a < apps_per_mix; ++a)
            spec.apps.push_back(pool[rng.below(pool.size())]);
        // The per-mix seed models each application's random
        // fast-forward of 0.5-1.5 G instructions.
        spec.seed = rng.next();
        mixes.push_back(std::move(spec));
    }
    return mixes;
}

RunPolicy
RunPolicy::fromEnv()
{
    RunPolicy policy;
    policy.ckpt = CheckpointConfig::fromEnv();
    policy.resume = resumeFromEnv();
    return policy;
}

namespace {

/** True when the scheduler (explicit flag or the proc-pool child's
 *  SIGTERM) wants this run to yield at the next snapshot boundary. */
bool
preemptWanted(const RunPolicy &policy)
{
    return (policy.preempt != nullptr &&
            policy.preempt->load(std::memory_order_relaxed)) ||
           procPreemptSignalled();
}

} // namespace

MixResult
runMix(const SystemConfig &config, const ExperimentSpec &spec,
       const SimWindow &window)
{
    return runMix(config, spec, window, std::string());
}

MixResult
runMix(const SystemConfig &config, const ExperimentSpec &spec,
       const SimWindow &window, const std::string &trace_label)
{
    return runMix(config, spec, window, trace_label,
                  RunPolicy::fromEnv());
}

MixResult
runMix(const SystemConfig &config, const ExperimentSpec &spec,
       const SimWindow &window, const std::string &trace_label,
       const RunPolicy &policy)
{
    // Every experiment harness funnels through here, so this is
    // where REPRO_PROFILE arms the self-profiler (idempotent; costs
    // one static check per experiment).
    prof::initFromEnv();

    std::vector<WorkloadProfile> apps;
    apps.reserve(spec.apps.size());
    for (const auto &name : spec.apps)
        apps.push_back(specProfile(name));

    auto system =
        std::make_unique<CmpSystem>(config, apps, spec.seed);

    // Content-addressed checkpoint cache: restore a matching mid-run
    // snapshot (REPRO_RESUME=1 after a killed sweep) or warmup
    // artifact instead of re-simulating it. With the directory unset
    // every branch below is dead and the run proceeds exactly as it
    // always has.
    const auto &ckpt = policy.ckpt;
    const std::uint64_t hash =
        ckpt.enabled() ? configHash(config) : 0;
    const std::string warmFile =
        ckpt.enabled()
            ? warmupPath(ckpt, warmupKey(config, spec.apps,
                                         spec.seed,
                                         window.warmupCycles))
            : std::string();
    const std::string runFile =
        ckpt.enabled()
            ? runPath(ckpt, runKey(config, spec.apps, spec.seed,
                                   window.warmupCycles,
                                   window.measureCycles))
            : std::string();

    // A payload that fails to decode mid-restore (format drift the
    // version check missed) leaves partial state behind; rebuild the
    // system so the from-scratch fallback starts clean.
    const auto restoreOrRebuild = [&](const std::string &path) {
        if (!checkpointFileExists(path))
            return false;
        if (tryRestoreCheckpoint(*system, path, hash))
            return true;
        system = std::make_unique<CmpSystem>(config, apps,
                                             spec.seed);
        return false;
    };

    bool restoredMid = false;
    bool restoredWarm = false;
    if (ckpt.enabled()) {
        if (policy.resume)
            restoredMid = restoreOrRebuild(runFile);
        if (!restoredMid)
            restoredWarm = restoreOrRebuild(warmFile);
    }

    const auto trace = attachTelemetryFromEnv(*system, trace_label);

    if (!restoredMid) {
        if (!restoredWarm) {
            system->run(window.warmupCycles);
            if (ckpt.enabled()) {
                saveCheckpoint(*system, warmFile, hash);
                pruneCheckpointDir(ckpt);
            }
        }
        system->resetStats();
    }

    const Cycle end = window.warmupCycles + window.measureCycles;
    if (ckpt.enabled() && ckpt.period != 0) {
        // Measure in period-sized chunks, snapshotting between them
        // so a killed job restarts from its last chunk boundary. The
        // artifact only covers the measurement window: the warmup is
        // already backed by its own artifact above. A preemption
        // request is honored at the same boundaries — the snapshot
        // just written IS the resume point, so yielding here loses
        // no work and a resumed run stays bit-identical.
        while (system->now() < end) {
            const Cycle step =
                std::min<Cycle>(ckpt.period, end - system->now());
            system->run(step);
            if (system->now() >= end)
                break;
            saveCheckpoint(*system, runFile, hash);
            if (preemptWanted(policy)) {
                throw JobPreempted(
                    "preempted at cycle " +
                    std::to_string(system->now()) +
                    " of " + std::to_string(end) +
                    "; snapshot saved");
            }
        }
        removeCheckpoint(runFile);
        pruneCheckpointDir(ckpt);
    } else if (system->now() < end) {
        system->run(end - system->now());
    }

    MixResult result;
    result.ipc = system->ipcs();
    result.l3AccessesPerKilocycle.reserve(system->numCores());
    for (unsigned c = 0; c < system->numCores(); ++c) {
        result.l3AccessesPerKilocycle.push_back(
            system->l3AccessesPerKilocycle(static_cast<CoreId>(c)));
    }
    return result;
}

} // namespace nuca
