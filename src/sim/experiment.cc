#include "sim/experiment.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "base/logging.hh"
#include "base/random.hh"
#include "sim/cmp_system.hh"
#include "sim/telemetry.hh"
#include "workload/spec_profiles.hh"

namespace nuca {

std::uint64_t
envOr(const char *name, std::uint64_t def)
{
    const char *value = std::getenv(name);
    if (value == nullptr || *value == '\0')
        return def;
    // strtoull silently wraps negative input ("-1" parses to
    // 2^64-1, which once sent a sweep off to run 18 quintillion
    // mixes) and saturates on overflow; reject both explicitly.
    const char *digits = value;
    while (std::isspace(static_cast<unsigned char>(*digits)))
        ++digits;
    fatal_if(*digits == '-', "environment variable ", name,
             " must be non-negative: '", value, "'");
    errno = 0;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(digits, &end, 10);
    fatal_if(end == digits || *end != '\0',
             "environment variable ", name,
             " is not a number: '", value, "'");
    fatal_if(errno == ERANGE, "environment variable ", name,
             " overflows 64 bits: '", value, "'");
    return parsed;
}

SimWindow
SimWindow::fromEnv(Cycle warmup_default, Cycle measure_default)
{
    SimWindow w;
    w.warmupCycles = envOr("REPRO_WARMUP_CYCLES", warmup_default);
    w.measureCycles = envOr("REPRO_MEASURE_CYCLES", measure_default);
    return w;
}

std::vector<ExperimentSpec>
makeMixes(const std::vector<std::string> &pool, unsigned count,
          unsigned apps_per_mix, std::uint64_t seed)
{
    fatal_if(pool.empty(), "empty benchmark pool");
    Rng rng(seed);
    std::vector<ExperimentSpec> mixes;
    mixes.reserve(count);
    for (unsigned i = 0; i < count; ++i) {
        ExperimentSpec spec;
        spec.apps.reserve(apps_per_mix);
        for (unsigned a = 0; a < apps_per_mix; ++a)
            spec.apps.push_back(pool[rng.below(pool.size())]);
        // The per-mix seed models each application's random
        // fast-forward of 0.5-1.5 G instructions.
        spec.seed = rng.next();
        mixes.push_back(std::move(spec));
    }
    return mixes;
}

MixResult
runMix(const SystemConfig &config, const ExperimentSpec &spec,
       const SimWindow &window)
{
    return runMix(config, spec, window, std::string());
}

MixResult
runMix(const SystemConfig &config, const ExperimentSpec &spec,
       const SimWindow &window, const std::string &trace_label)
{
    std::vector<WorkloadProfile> apps;
    apps.reserve(spec.apps.size());
    for (const auto &name : spec.apps)
        apps.push_back(specProfile(name));

    CmpSystem system(config, apps, spec.seed);
    const auto trace = attachTelemetryFromEnv(system, trace_label);
    system.run(window.warmupCycles);
    system.resetStats();
    system.run(window.measureCycles);

    MixResult result;
    result.ipc = system.ipcs();
    result.l3AccessesPerKilocycle.reserve(system.numCores());
    for (unsigned c = 0; c < system.numCores(); ++c) {
        result.l3AccessesPerKilocycle.push_back(
            system.l3AccessesPerKilocycle(static_cast<CoreId>(c)));
    }
    return result;
}

} // namespace nuca
