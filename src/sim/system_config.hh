/**
 * @file
 * Whole-system configurations: Table 1's baseline in each of the
 * four last-level cache organizations, plus the variants the
 * evaluation section uses (the 4x-sized private caches of Figure 7,
 * the 8 MB L3 of Figure 9 and the technology-scaled timing of
 * Figure 10).
 */

#ifndef NUCA_SIM_SYSTEM_CONFIG_HH
#define NUCA_SIM_SYSTEM_CONFIG_HH

#include <string>

#include "base/types.hh"
#include "cache/set_assoc_cache.hh"
#include "cpu/memory_system.hh"
#include "cpu/ooo_core.hh"

namespace nuca {

/** Which last-level cache organization a system uses. */
enum class L3Scheme
{
    Private,
    Shared,
    Adaptive,
    RandomReplacement,
};

/** Printable name of a scheme. */
std::string to_string(L3Scheme scheme);

/** Every parameter needed to build a CmpSystem. */
struct SystemConfig
{
    unsigned numCores = 4;
    L3Scheme scheme = L3Scheme::Adaptive;

    OooCoreParams core{};
    CoreMemoryParams coreMem{};

    /** L3 geometry: capacity is per core for the distributed
     * organizations and numCores * this for the shared one. */
    std::uint64_t l3SizePerCoreBytes = 1ull << 20;
    unsigned l3LocalAssoc = 4;
    Cycle l3LocalLatency = 14;
    Cycle l3SharedLatency = 19;

    /** First-chunk memory latency; Table 1 gives the pure-private
     * organization a 2-cycle shorter path. */
    Cycle memFirstChunkShared = 260;
    Cycle memFirstChunkPrivate = 258;

    /** Adaptive-scheme knobs. */
    Counter epochMisses = 2000;
    unsigned shadowSampleShift = 0;
    /** Ablation: freeze the adaptive quotas at the 75/25 split. */
    bool adaptationEnabled = true;
    /**
     * Parallel-workload extension: write-invalidate coherence
     * between the private L1/L2 hierarchies, and remote hits into
     * private L3 partitions (no duplication of shared blocks).
     */
    bool coherentSharing = false;

    /** L3 replacement policy for the private/shared baselines
     * (ablation study; the paper uses LRU throughout). */
    ReplPolicy l3ReplPolicy = ReplPolicy::Lru;

    /** Seed for any randomized scheme component (spill targets). */
    std::uint64_t schemeSeed = 7;

    /** Table 1 baseline for the given organization. */
    static SystemConfig baseline(L3Scheme scheme);

    /**
     * Figure 7's idealized comparison point: every core owns a
     * private cache as large as the whole shared cache (4 MB),
     * with the private timing.
     */
    static SystemConfig quadSizePrivate();

    /** Figure 9: 8 MB total L3 (2 MB per core), same timing. */
    static SystemConfig large8MB(L3Scheme scheme);

    /**
     * Figure 10: future technology — core 30% faster, so caches and
     * memory are relatively slower: L2 9 -> 11 cycles, L3 14/19 ->
     * 16/24, memory 258/260 -> 330/338.
     */
    static SystemConfig scaledTech(L3Scheme scheme);
};

} // namespace nuca

#endif // NUCA_SIM_SYSTEM_CONFIG_HH
