/**
 * @file
 * Crash-safe persistence for sweep results: a JSON-lines sidecar that
 * accumulates one record per settled job while the sweep runs. Every
 * append is one fwrite + fflush under a mutex, so a killed sweep
 * leaves at worst one torn final line — which the loader skips — and
 * every earlier result is intact. REPRO_RESUME=1 replays the sidecar
 * to skip (and reuse) the jobs that already completed ok; jobs that
 * previously failed are re-run.
 *
 * The sidecar lives next to the final REPRO_JSON document as
 * "<path>.partial". The final document itself is written atomically
 * (writeFileAtomic), so the two files cover both failure windows: the
 * sidecar covers death mid-sweep, the rename covers death mid-write.
 */

#ifndef NUCA_SIM_SWEEP_STORE_HH
#define NUCA_SIM_SWEEP_STORE_HH

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/json_writer.hh"
#include "sim/parallel_runner.hh"

namespace nuca {

/**
 * Serialize a MixResult's payload fields into a JSON object with
 * "ipc" and "l3apk" number arrays. Shared by the sidecar records and
 * the proc-pool wire protocol: both go through json::Value's exact
 * double round-trip, which is what makes a proc-isolated sweep's
 * REPRO_JSON byte-identical to the in-process pool's.
 */
json::Value mixResultToJson(const MixResult &result);

/** Parse the fields written by mixResultToJson (absent keys yield
 *  empty vectors). */
MixResult mixResultFromJson(const json::Value &obj);

/** Inverse of to_string(JobStatus); unknown names parse as Failed so
 *  old or foreign sidecars still load (never reuses such a job). */
JobStatus jobStatusFromString(const std::string &name);

/** One settled sweep job as persisted in the sidecar. */
struct SweepRecord
{
    /** Unique job label ("<scheme>.mix<m>"). */
    std::string label;
    JobStatus status = JobStatus::Ok;
    /** Failure text; empty when ok. */
    std::string error;
    /** The job's result; default-valued when not ok. */
    MixResult result;
    /**
     * Daemon-side scheduling telemetry: total milliseconds spent
     * waiting in the queue and times the job was preempted. Only
     * written (and only meaningful) when `timed` is set — classic
     * sweep sidecars omit the keys entirely, keeping their byte
     * format unchanged.
     */
    std::uint64_t queueMs = 0;
    std::uint64_t preempts = 0;
    bool timed = false;
};

/** Append-only JSONL sidecar writer (thread-safe). */
class SweepStore
{
  public:
    /** Open @p path for appending; fatal when it cannot be opened. */
    explicit SweepStore(std::string path);
    ~SweepStore();

    SweepStore(const SweepStore &) = delete;
    SweepStore &operator=(const SweepStore &) = delete;

    /** Persist one record: serialize, append, flush. */
    void append(const SweepRecord &record);

    const std::string &path() const { return path_; }

    /**
     * Parse an existing sidecar into records, in file order. A
     * missing file yields no records; unparsable lines (the torn
     * tail of a killed run) are skipped.
     */
    static std::vector<SweepRecord> load(const std::string &path);

    /**
     * True when REPRO_SYNC=1 upgrades every append from fflush (data
     * reaches the kernel; survives the *process* dying) to
     * fflush+fsync (data reaches the disk; survives the *machine*
     * dying). The default trades the power-loss window for not
     * serializing every record behind a disk flush.
     */
    bool synced() const { return sync_; }

    /** Sidecar path belonging to a REPRO_JSON path. */
    static std::string sidecarPathFor(const std::string &json_path)
    {
        return json_path + ".partial";
    }

  private:
    std::string path_;
    std::FILE *file_;
    bool sync_;
    std::mutex mutex_;
};

} // namespace nuca

#endif // NUCA_SIM_SWEEP_STORE_HH
