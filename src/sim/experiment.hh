/**
 * @file
 * The multiprogrammed experiment methodology of Section 3: draw
 * random 4-application mixes from a benchmark pool, fast-forward
 * each application by a random amount (modeled by seeding the
 * generators), warm the caches, then measure per-core IPC under a
 * given system configuration.
 */

#ifndef NUCA_SIM_EXPERIMENT_HH
#define NUCA_SIM_EXPERIMENT_HH

#include <atomic>
#include <string>
#include <vector>

#include "base/types.hh"
#include "sim/checkpoint.hh"
#include "sim/system_config.hh"

namespace nuca {

/** One multiprogrammed mix: four application names plus a seed. */
struct ExperimentSpec
{
    std::vector<std::string> apps;
    std::uint64_t seed;
};

/** Per-core results of running one mix on one configuration. */
struct MixResult
{
    std::vector<double> ipc;
    std::vector<double> l3AccessesPerKilocycle;
    /**
     * Auxiliary per-way payload carried by miss-curve jobs run
     * through the service daemon; empty (and never serialized) for
     * ordinary mix experiments, so the classic REPRO_JSON byte
     * format is untouched.
     */
    std::vector<double> curve;
};

/** Simulation window lengths. */
struct SimWindow
{
    Cycle warmupCycles;
    Cycle measureCycles;

    /**
     * Defaults scaled for interactive runs, overridable through the
     * REPRO_WARMUP_CYCLES / REPRO_MEASURE_CYCLES environment
     * variables (the paper simulates 200 M cycles per experiment;
     * that is reachable by setting the variables accordingly).
     */
    static SimWindow fromEnv(Cycle warmup_default = 200000,
                             Cycle measure_default = 1000000);
};

/** Read an unsigned environment override, or the default. */
std::uint64_t envOr(const char *name, std::uint64_t def);

/** Raw environment string, or empty when unset. */
std::string envString(const char *name);

/**
 * Draw @p count random 4-app mixes (with replacement, like the
 * paper's random selection) from @p pool.
 */
std::vector<ExperimentSpec>
makeMixes(const std::vector<std::string> &pool, unsigned count,
          unsigned apps_per_mix, std::uint64_t seed);

/**
 * Explicit per-run policy for checkpointing, resume, and preemption.
 * The classic runMix overloads build one from the environment; the
 * service daemon builds its own — environment variables are
 * process-global and the daemon runs many jobs concurrently with
 * different state directories, so it must not mutate the env.
 */
struct RunPolicy
{
    /** Checkpoint cache + snapshot period for this run. */
    CheckpointConfig ckpt;
    /** Consume a matching mid-run snapshot when one exists. */
    bool resume = false;
    /**
     * When non-null, polled at every snapshot boundary: once true
     * the run saves a mid-run snapshot and throws JobPreempted. The
     * proc-pool child has its own signal-driven flag that is polled
     * alongside this one.
     */
    const std::atomic<bool> *preempt = nullptr;

    /** REPRO_CKPT_DIR / REPRO_CKPT_PERIOD / REPRO_RESUME. */
    static RunPolicy fromEnv();
};

/** Run one mix on one configuration. */
MixResult runMix(const SystemConfig &config,
                 const ExperimentSpec &spec, const SimWindow &window);

/**
 * As above, but when REPRO_TRACE is set the run is traced to the
 * label-derived file tracePathFor(REPRO_TRACE, trace_label) — one
 * file per experiment, so parallel sweeps never share a writer. An
 * empty label traces to the REPRO_TRACE path itself. Tracing never
 * changes the simulated results.
 */
MixResult runMix(const SystemConfig &config,
                 const ExperimentSpec &spec, const SimWindow &window,
                 const std::string &trace_label);

/**
 * The fully explicit form: checkpointing, resume, and preemption come
 * from @p policy instead of the environment. Preemption (see
 * RunPolicy::preempt) throws JobPreempted after saving a mid-run
 * snapshot; a later call with the same policy restores it and
 * continues, producing a result bit-identical to an uninterrupted
 * run.
 */
MixResult runMix(const SystemConfig &config,
                 const ExperimentSpec &spec, const SimWindow &window,
                 const std::string &trace_label,
                 const RunPolicy &policy);

} // namespace nuca

#endif // NUCA_SIM_EXPERIMENT_HH
