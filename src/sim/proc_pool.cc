#include "sim/proc_pool.hh"

#include <string>

#include "base/logging.hh"
#include "sim/robustness.hh"

#if defined(__unix__) || defined(__APPLE__)
#define NUCA_HAVE_FORK 1
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <poll.h>
#include <sys/resource.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "sim/sweep_store.hh"
#else
#define NUCA_HAVE_FORK 0
#endif

namespace nuca {

bool
procIsolationSupported()
{
    return NUCA_HAVE_FORK != 0;
}

#if NUCA_HAVE_FORK

namespace {

/** Set in a preemptible sandbox child when SIGTERM arrives. */
volatile std::sig_atomic_t g_proc_preempt = 0;

extern "C" void
procPreemptHandler(int)
{
    g_proc_preempt = 1;
}

} // namespace

bool
procPreemptSignalled()
{
    return g_proc_preempt != 0;
}

void
ProcJobHandle::requestPreempt()
{
    preempt.store(true, std::memory_order_relaxed);
    // The pid is cleared before the child is reaped (at pipe EOF the
    // child is dead-or-zombie), so this signal can only land on our
    // own live-or-zombie child, never a recycled pid.
    const long long p = pid.load(std::memory_order_relaxed);
    if (p > 0)
        ::kill(static_cast<pid_t>(p), SIGTERM);
}

#else // !NUCA_HAVE_FORK

bool
procPreemptSignalled()
{
    return false;
}

void
ProcJobHandle::requestPreempt()
{
    preempt.store(true, std::memory_order_relaxed);
}

#endif

ProcIsolation
ProcIsolation::fromEnv()
{
    ProcIsolation iso;
    const std::string mode = envString("REPRO_ISOLATE");
    if (mode.empty() || mode == "off") {
        iso.enabled = false;
    } else if (mode == "proc") {
        iso.enabled = true;
    } else {
        fatal("REPRO_ISOLATE must be proc or off, got '", mode, "'");
    }
    if (iso.enabled && !procIsolationSupported()) {
        warn("REPRO_ISOLATE=proc: fork is unavailable on this "
             "platform; jobs will run in-process without limits");
        iso.enabled = false;
    }
    iso.memMb = envOr("REPRO_JOB_MEM_MB", iso.memMb);
    iso.cpuS = envOr("REPRO_JOB_CPU_S", iso.cpuS);
    iso.timeoutS = envOr("REPRO_JOB_TIMEOUT_S", iso.timeoutS);
    iso.graceMs = envOr("REPRO_JOB_GRACE_MS", iso.graceMs);
    return iso;
}

std::string
describeSignal(int sig)
{
#if NUCA_HAVE_FORK
    // A fixed table, not strsignal(): the names land in sidecar
    // records that tests and tooling grep, so they must not vary
    // with libc locale or version.
    switch (sig) {
      case SIGSEGV:
        return "SIGSEGV (segmentation fault)";
      case SIGABRT:
        return "SIGABRT (abort)";
      case SIGBUS:
        return "SIGBUS (bus error)";
      case SIGILL:
        return "SIGILL (illegal instruction)";
      case SIGFPE:
        return "SIGFPE (arithmetic exception)";
      case SIGKILL:
        return "SIGKILL (killed; possible OOM kill)";
      case SIGTERM:
        return "SIGTERM (terminated)";
      case SIGXCPU:
        return "SIGXCPU (CPU time limit exceeded)";
      default:
        return "signal " + std::to_string(sig);
    }
#else
    return "signal " + std::to_string(sig);
#endif
}

#if NUCA_HAVE_FORK

namespace {

/** Apply the child-side rlimit caps; never returns on failure (the
 *  wire protocol would misattribute a half-limited child). */
void
applyLimits(const ProcIsolation &iso)
{
    if (iso.memMb != 0) {
        rlimit lim{};
        lim.rlim_cur = lim.rlim_max =
            static_cast<rlim_t>(iso.memMb) * 1024 * 1024;
        if (::setrlimit(RLIMIT_AS, &lim) != 0)
            ::_exit(124);
    }
    if (iso.cpuS != 0) {
        // Soft limit raises SIGXCPU (classified as a timeout); the
        // hard limit one second later is the kernel's backstop if
        // the child somehow survives it.
        rlimit lim{};
        lim.rlim_cur = static_cast<rlim_t>(iso.cpuS);
        lim.rlim_max = static_cast<rlim_t>(iso.cpuS) + 1;
        if (::setrlimit(RLIMIT_CPU, &lim) != 0)
            ::_exit(124);
    }
}

/** write(2) the whole buffer, riding out EINTR and short writes. */
bool
writeAll(int fd, const std::string &text)
{
    std::size_t off = 0;
    while (off < text.size()) {
        const ssize_t n =
            ::write(fd, text.data() + off, text.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/**
 * Child side: run the body, encode the settlement as one JSON line
 * on @p fd, and _exit. _exit (not exit) on every path: the child is
 * a fork of a possibly multi-threaded parent and must not run the
 * parent's atexit hooks — those would re-write trace files and
 * profiler reports the parent still owns.
 */
[[noreturn]] void
childMain(int fd, const ProcIsolation &iso,
          const std::function<MixResult()> &body)
{
    applyLimits(iso);
    // Preemptible children turn SIGTERM into a yield request; the
    // job saves a snapshot at its next checkpoint boundary and the
    // settlement below ships "preempted". Non-preemptible children
    // keep the default disposition so the deadline escalation
    // (SIGTERM -> grace -> SIGKILL) kills them as before.
    if (iso.preemptible)
        std::signal(SIGTERM, procPreemptHandler);
    json::Value record = json::Value::object();
    try {
        const MixResult result = body();
        record = mixResultToJson(result);
        record.set("status", "ok");
    } catch (const SimulationStalled &e) {
        record.set("status", "stalled");
        record.set("error", std::string(e.what()));
    } catch (const CycleBudgetExceeded &e) {
        record.set("status", "over_budget");
        record.set("error", std::string(e.what()));
    } catch (const JobPreempted &e) {
        record.set("status", "preempted");
        record.set("error", std::string(e.what()));
    } catch (const std::exception &e) {
        record.set("status", "failed");
        record.set("error", std::string(e.what()));
    } catch (...) {
        record.set("status", "failed");
        record.set("error", "unknown exception");
    }
    if (!writeAll(fd, record.dump() + "\n"))
        ::_exit(123);
    ::_exit(0);
}

/** Parent-side watch result: the child's full pipe output plus
 *  whether the wall-clock deadline forced an escalation. */
struct WatchResult
{
    std::string payload;
    bool timedOut = false;
    bool killed = false; ///< escalated all the way to SIGKILL
};

/**
 * Drain the child's pipe to EOF, enforcing the wall-clock deadline:
 * past it the child gets SIGTERM, after graceMs more SIGKILL. The
 * pipe (not waitpid) is the progress signal — EOF means the child
 * and any descendants closed the write end, almost always by dying.
 */
WatchResult
watchChild(int fd, pid_t pid, const ProcIsolation &iso)
{
    using Clock = std::chrono::steady_clock;
    WatchResult watch;
    const bool deadline = iso.timeoutS != 0;
    const auto start = Clock::now();
    const auto term_at = start + std::chrono::seconds(iso.timeoutS);
    const auto kill_at =
        term_at + std::chrono::milliseconds(iso.graceMs);

    char buf[4096];
    for (;;) {
        // Block until EOF when there is no deadline left to arm:
        // none configured, or SIGKILL already sent (unblockable, so
        // EOF is guaranteed; polling again would only spin).
        int wait_ms = -1;
        if (deadline && !watch.killed) {
            const auto now = Clock::now();
            const auto next = watch.timedOut ? kill_at : term_at;
            wait_ms = static_cast<int>(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    next - now)
                    .count());
            if (wait_ms < 0)
                wait_ms = 0;
        }
        pollfd pfd{fd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, wait_ms);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (ready > 0) {
            const ssize_t n = ::read(fd, buf, sizeof(buf));
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                break;
            }
            if (n == 0)
                break; // EOF: the child is done (or dead)
            watch.payload.append(buf, static_cast<std::size_t>(n));
            continue;
        }
        // poll timed out: a deadline boundary passed. Escalate.
        if (!watch.timedOut) {
            watch.timedOut = true;
            ::kill(pid, SIGTERM);
        } else if (!watch.killed) {
            watch.killed = true;
            ::kill(pid, SIGKILL);
        }
        // After SIGKILL the read loop still runs: EOF arrives as
        // soon as the kernel reaps the write end.
    }
    return watch;
}

/** waitpid riding out EINTR; returns the raw status word. */
int
awaitChild(pid_t pid)
{
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    return status;
}

/** Decode a clean child's JSON settlement line; throws the typed
 *  failure the child shipped, returns its result otherwise. */
MixResult
settleWire(const std::string &payload)
{
    const auto parsed = json::Value::tryParse(payload);
    if (!parsed || parsed->type() != json::Value::Type::Object ||
        !parsed->contains("status")) {
        throw JobCrashed("isolated job exited cleanly but returned "
                         "no parsable result");
    }
    const std::string &status = parsed->at("status").asString();
    const std::string error =
        parsed->contains("error") ? parsed->at("error").asString()
                                  : std::string();
    if (status == "ok")
        return mixResultFromJson(*parsed);
    if (status == "stalled")
        throw SimulationStalled(error);
    if (status == "over_budget")
        throw CycleBudgetExceeded(error);
    if (status == "preempted")
        throw JobPreempted(error);
    throw SimulationError(error.empty() ? "isolated job failed"
                                        : error);
}

} // namespace

MixResult
runMixSandboxed(const ProcIsolation &iso,
                const std::function<MixResult()> &body,
                ProcJobHandle *handle)
{
    if (!iso.enabled)
        return body();

    int fds[2];
    if (::pipe(fds) != 0) {
        warn("proc pool: pipe() failed (", std::strerror(errno),
             "); running job in-process");
        return body();
    }

    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        warn("proc pool: fork() failed (", std::strerror(errno),
             "); running job in-process");
        return body();
    }
    if (pid == 0) {
        // Child. Only this fork's own pipe end stays open; the read
        // end (and anything else) is surplus.
        ::close(fds[0]);
        childMain(fds[1], iso, body); // never returns
    }

    // Parent.
    ::close(fds[1]);
    if (handle != nullptr) {
        handle->pid.store(pid, std::memory_order_relaxed);
        // A preempt that raced the fork: deliver it now that there
        // is a child to deliver it to.
        if (handle->preempt.load(std::memory_order_relaxed))
            ::kill(pid, SIGTERM);
    }
    const WatchResult watch = watchChild(fds[0], pid, iso);
    // EOF means the child closed its pipe end (dead or exiting), so
    // its pid cannot be recycled until we reap it below: clearing
    // the handle here closes the requestPreempt() pid-reuse window.
    if (handle != nullptr)
        handle->pid.store(0, std::memory_order_relaxed);
    ::close(fds[0]);
    const int status = awaitChild(pid);

    if (watch.timedOut) {
        throw JobTimedOut(
            "isolated job exceeded its " +
            std::to_string(iso.timeoutS) +
            " s wall-clock deadline (SIGTERM" +
            (watch.killed ? " escalated to SIGKILL after " +
                                std::to_string(iso.graceMs) +
                                " ms grace"
                          : "") +
            ")");
    }
    if (WIFSIGNALED(status)) {
        const int sig = WTERMSIG(status);
        if (sig == SIGXCPU) {
            throw JobTimedOut("isolated job exceeded its " +
                              std::to_string(iso.cpuS) +
                              " s CPU limit (" + describeSignal(sig) +
                              ")");
        }
        throw JobCrashed("isolated job killed by " +
                         describeSignal(sig));
    }
    if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
        const int code = WEXITSTATUS(status);
        std::string what;
        if (code == 124)
            what = "isolated job could not apply its resource "
                   "limits (setrlimit failed)";
        else if (code == 123)
            what = "isolated job could not write its result pipe";
        else
            what = "isolated job exited with status " +
                   std::to_string(code);
        throw JobCrashed(what);
    }
    return settleWire(watch.payload);
}

#else // !NUCA_HAVE_FORK

MixResult
runMixSandboxed(const ProcIsolation &iso,
                const std::function<MixResult()> &body,
                ProcJobHandle *handle)
{
    (void)iso; // fromEnv() already warned and disabled
    (void)handle;
    return body();
}

#endif

} // namespace nuca
