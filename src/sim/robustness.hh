/**
 * @file
 * Robustness layer configuration: failure taxonomy, recovery policy,
 * forward-progress watchdog bounds, periodic invariant checking, and
 * deliberate fault injection.
 *
 * A long sweep dies in one of three ways: a job throws (bad config,
 * simulator bug), a job wedges (leaked MSHR, stalled memory channel —
 * the simulation loop spins forever), or a job silently corrupts
 * state and reports wrong numbers. The pieces here give each failure
 * mode a detector and a recovery path:
 *
 *  - SimulationStalled / CycleBudgetExceeded turn "hangs forever"
 *    into a catchable error carrying a diagnostic snapshot;
 *  - SweepPolicy (REPRO_FAIL=abort|skip|retry:N) decides what the
 *    sweep supervisor does with a failed job;
 *  - RobustnessConfig wires the CmpSystem watchdog (zero-retirement
 *    window, MSHR age bound, cycle budget) and the REPRO_CHECK
 *    periodic invariant pass;
 *  - FaultSpec (REPRO_FAULT=<kind>[:arg]) injects one deliberate
 *    defect so tests can prove end-to-end that the checker, the
 *    watchdog, and the supervisor each catch what they claim to.
 *
 * Everything here is observational when idle: with no environment
 * knobs set, simulated results are bit-identical to a build without
 * the robustness layer.
 */

#ifndef NUCA_SIM_ROBUSTNESS_HH
#define NUCA_SIM_ROBUSTNESS_HH

#include <cstddef>
#include <stdexcept>
#include <string>

#include "base/types.hh"

namespace nuca {

/** Base of all recoverable simulation failures the sweep supervisor
 *  classifies (a plain std::exception still counts as "failed"). */
class SimulationError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * The forward-progress watchdog found a wedged simulation: a window
 * of cycles with zero retired instructions across all cores, or an
 * MSHR entry older than the age bound. The message carries the
 * per-core pipeline/MSHR/channel snapshot taken at detection time.
 */
class SimulationStalled : public SimulationError
{
  public:
    using SimulationError::SimulationError;
};

/** The REPRO_MAX_CYCLES budget was exhausted before run() finished. */
class CycleBudgetExceeded : public SimulationError
{
  public:
    using SimulationError::SimulationError;
};

/**
 * A process-isolated job (REPRO_ISOLATE=proc) died abnormally: the
 * child exited nonzero or was killed by a signal (segfault, abort,
 * OOM kill). The message carries the decoded exit disposition.
 */
class JobCrashed : public SimulationError
{
  public:
    using SimulationError::SimulationError;
};

/**
 * A process-isolated job blew its deadline: either the parent's
 * wall-clock REPRO_JOB_TIMEOUT_S (SIGTERM -> grace -> SIGKILL
 * escalation) or the child's RLIMIT_CPU budget (SIGXCPU).
 */
class JobTimedOut : public SimulationError
{
  public:
    using SimulationError::SimulationError;
};

/**
 * A job was preempted at a checkpoint boundary: the scheduler asked
 * it to yield, it saved a mid-run snapshot, and it unwound instead of
 * finishing. Not a failure — the job is requeued and a later attempt
 * restores the snapshot and continues where it left off.
 */
class JobPreempted : public SimulationError
{
  public:
    using SimulationError::SimulationError;
};

/** What the sweep supervisor does with a job that fails. */
enum class FailPolicy
{
    Abort, ///< stop claiming jobs, rethrow after the pool drains
    Skip,  ///< record a "failed" result and keep sweeping
    Retry, ///< re-run the job up to `retries` times, then skip
};

/** The REPRO_FAIL recovery policy. */
struct SweepPolicy
{
    FailPolicy onFail = FailPolicy::Abort;
    /** Re-runs granted per job under FailPolicy::Retry. */
    unsigned retries = 0;
    /**
     * Base delay before the first re-run (REPRO_RETRY_BACKOFF_MS);
     * doubles per attempt with deterministic seeded jitter. 0
     * disables the backoff entirely.
     */
    unsigned backoffMs = 100;
    /**
     * Poison-job quarantine threshold (REPRO_QUARANTINE): under
     * FailPolicy::Retry, a job whose attempts *crash* (child death or
     * timeout, not a clean in-process failure) this many times is
     * recorded Quarantined and the sweep moves on, however many
     * retries remain — one crashing job must not burn the pool's
     * whole retry budget. 0 disables quarantine.
     */
    unsigned maxCrashes = 2;

    /**
     * Parse REPRO_FAIL: "abort" (default), "skip", or "retry:N" with
     * N >= 1; plus the REPRO_RETRY_BACKOFF_MS and REPRO_QUARANTINE
     * retry tuning knobs. Anything else is fatal.
     */
    static SweepPolicy fromEnv();
};

/** Kinds of deliberate defects the injector can plant. */
enum class FaultKind
{
    None,         ///< REPRO_FAULT unset
    LruCorrupt,   ///< scramble an L3 set's LRU stamps (checker's prey)
    MshrLeak,     ///< reserve an L2D MSHR entry that never completes
    ChannelStall, ///< wedge the memory channel (watchdog's prey)
    ThrowJob,     ///< throw from sweep job `arg` (supervisor's prey)
    SegvJob,      ///< segfault in sweep job `arg` (proc pool's prey)
    OomJob,       ///< exhaust memory in job `arg` (RLIMIT_AS's prey)
    HangJob,      ///< hang sweep job `arg` (the deadline's prey)
    SigtermJob,   ///< raise SIGTERM in job `arg` (graceful stop's prey)
};

/**
 * One parsed REPRO_FAULT specification. The simulator-level kinds
 * (lru_corrupt, mshr_leak, channel_stall) take an optional ":cycle"
 * at which the defect is planted (default 0: the first robustness
 * check after run() starts); the job-level kinds (throw_job, segv,
 * oom, hang) take a mandatory ":K" job index and are interpreted by
 * the bench sweep, not the simulator.
 */
struct FaultSpec
{
    FaultKind kind = FaultKind::None;
    /** Injection cycle, or the target job index for job faults. */
    std::uint64_t arg = 0;

    bool enabled() const { return kind != FaultKind::None; }
    /** True for the kinds CmpSystem plants inside the simulator. */
    bool isSimFault() const
    {
        return kind == FaultKind::LruCorrupt ||
               kind == FaultKind::MshrLeak ||
               kind == FaultKind::ChannelStall;
    }
    /** True for the kinds aimed at one sweep job (arg = job index). */
    bool isJobFault() const
    {
        return kind == FaultKind::ThrowJob ||
               kind == FaultKind::SigtermJob || isCrashFault();
    }
    /**
     * True for the kinds that take down their whole process — they
     * need REPRO_ISOLATE=proc so only a forked child dies.
     */
    bool isCrashFault() const
    {
        return kind == FaultKind::SegvJob ||
               kind == FaultKind::OomJob ||
               kind == FaultKind::HangJob;
    }

    /** Parse REPRO_FAULT; unknown kinds are fatal. */
    static FaultSpec fromEnv();
};

/**
 * Plant @p fault in sweep job @p job (no-op unless the spec is a job
 * fault naming exactly that index). ThrowJob throws SimulationError;
 * segv/oom/hang never return — they kill or wedge the calling
 * process, so the sweep must only invoke this inside a forked child
 * (REPRO_ISOLATE=proc).
 */
void injectJobFault(const FaultSpec &fault, std::size_t job,
                    const std::string &label);

/** Printable fault-kind name (for messages and records). */
const char *to_string(FaultKind kind);

/** The CmpSystem-level robustness knobs. */
struct RobustnessConfig
{
    /** Periodic structural-invariant pass (REPRO_CHECK=1). */
    bool checkEnabled = false;
    /** Cycles between invariant passes (REPRO_CHECK_PERIOD). */
    Cycle checkPeriod = 100000;

    /** Watchdog master switch (REPRO_WATCHDOG=0 disables). */
    bool watchdogEnabled = true;
    /**
     * Cycles with zero retired instructions across all cores before
     * the run is declared stalled (REPRO_WATCHDOG_WINDOW).
     */
    Cycle watchdogWindow = 1000000;
    /**
     * Maximum age of an L2D MSHR entry before the run is declared
     * stalled (REPRO_WATCHDOG_MSHR_AGE; default: the window).
     */
    Cycle mshrAgeBound = 1000000;

    /** Total-cycle budget per system; 0 = unlimited
     *  (REPRO_MAX_CYCLES). */
    Cycle maxCycles = 0;

    /** The deliberate defect to plant, if any (REPRO_FAULT). */
    FaultSpec fault;

    /** True when any periodic work is scheduled at all. */
    bool anyPeriodic() const
    {
        return checkEnabled || watchdogEnabled || maxCycles != 0 ||
               fault.isSimFault();
    }

    static RobustnessConfig fromEnv();
};

/** True when REPRO_RESUME=1: sweeps skip sidecar-completed labels. */
bool resumeFromEnv();

/**
 * Graceful sweep shutdown. installSweepInterruptHandlers() arms
 * SIGINT/SIGTERM handlers that raise a flag instead of killing the
 * process: the worker pool stops claiming jobs at the next boundary,
 * in-flight jobs finish, and the supervisor records everything
 * unattempted as Interrupted — the JSONL sidecar stays whole and a
 * REPRO_RESUME=1 rerun picks up exactly where the sweep stopped.
 * A second signal while the flag is already up _exit(128+sig)s, so
 * an impatient operator can still kill a long in-flight job.
 * Handlers are process-global; restore puts the previous
 * dispositions back (the flag itself persists until cleared).
 */
void installSweepInterruptHandlers();
void restoreSweepInterruptHandlers();

/** True once a SIGINT/SIGTERM arrived under the installed handlers. */
bool sweepInterruptRequested();

/** The signal number that raised the flag (0 when none). */
int sweepInterruptSignal();

/** Lower the flag (tests; a supervisor deciding to carry on). */
void clearSweepInterrupt();

} // namespace nuca

#endif // NUCA_SIM_ROBUSTNESS_HH
