/**
 * @file
 * Minimal JSON document model for machine-readable experiment
 * results (REPRO_JSON=<path>). The bench harnesses emit one record
 * per (scheme, mix) so the paper-figure trajectories can be tracked
 * across PRs without scraping the human-oriented tables; the parser
 * exists so tests (and tools/) can consume what the writer emits
 * without an external dependency.
 *
 * Deliberately small: objects preserve insertion order, numbers are
 * doubles serialized with enough digits to round-trip exactly, and
 * the only supported encoding is UTF-8 passed through verbatim
 * (non-ASCII bytes are never escaped, control characters always are).
 */

#ifndef NUCA_SIM_JSON_WRITER_HH
#define NUCA_SIM_JSON_WRITER_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace nuca {
namespace json {

/** One JSON value: null, bool, number, string, array, or object. */
class Value
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Value() : type_(Type::Null) {}
    Value(bool b) : type_(Type::Bool), bool_(b) {}
    Value(double n) : type_(Type::Number), number_(n) {}
    Value(int n) : type_(Type::Number), number_(n) {}
    Value(std::uint64_t n)
        : type_(Type::Number), number_(static_cast<double>(n)) {}
    Value(const char *s) : type_(Type::String), string_(s) {}
    Value(std::string s) : type_(Type::String), string_(std::move(s)) {}

    static Value array() { Value v; v.type_ = Type::Array; return v; }
    static Value object() { Value v; v.type_ = Type::Object; return v; }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }

    /** Typed accessors; panic on a type mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;

    /** Array: append an element. @pre type() == Array */
    Value &append(Value element);
    /** Object: add/replace a member, preserving insertion order. */
    Value &set(const std::string &key, Value element);

    /** Array element count / object member count (0 for scalars). */
    std::size_t size() const;

    /** Array indexing. @pre type() == Array, i < size() */
    const Value &at(std::size_t i) const;
    /** Object member lookup; panics when @p key is absent. */
    const Value &at(const std::string &key) const;
    /** True when the object has a member named @p key. */
    bool contains(const std::string &key) const;

    /** Object members in insertion order (for iteration). */
    const std::vector<std::pair<std::string, Value>> &
    members() const { return members_; }

    /**
     * Serialize. @p indent > 0 pretty-prints with that many spaces
     * per level; 0 emits the compact single-line form.
     */
    std::string dump(unsigned indent = 0) const;

    /** Parse a complete document; nullopt on any syntax error. */
    static std::optional<Value> tryParse(const std::string &text);
    /** Parse a complete document; fatal() on any syntax error. */
    static Value parse(const std::string &text);

  private:
    void dumpTo(std::string &out, unsigned indent,
                unsigned depth) const;

    Type type_;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Value> elements_;
    std::vector<std::pair<std::string, Value>> members_;
};

/** JSON string escaping (quotes not included). */
std::string escape(const std::string &raw);

/** Write @p value to @p path (trailing newline added); fatal on I/O
 *  errors so a misspelled REPRO_JSON directory fails loudly. */
void writeFile(const std::string &path, const Value &value);

/** writeFile via a sibling ".tmp" file renamed into place, so a
 *  crash mid-write never leaves a truncated document at @p path. */
void writeFileAtomic(const std::string &path, const Value &value);

/** Read an entire file; fatal when it cannot be opened. */
std::string readFile(const std::string &path);

} // namespace json
} // namespace nuca

#endif // NUCA_SIM_JSON_WRITER_HH
