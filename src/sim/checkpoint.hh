/**
 * @file
 * The content-addressed checkpoint cache and mid-run resume policy.
 *
 * Warmup artifacts are keyed by a hash of everything that determines
 * the warmed state bit-for-bit: the full SystemConfig, the per-core
 * application names, the mix seed, and the warmup length. Two jobs
 * that agree on all four would simulate identical warmups, so the
 * second one restores the first one's snapshot instead. Anything
 * else — a different scheme, an extra core, one more warmup cycle —
 * changes the key and misses the cache.
 *
 * Mid-run artifacts additionally key on the measurement length and
 * are consumed only under REPRO_RESUME=1, so a killed sweep restarts
 * from its last periodic snapshot rather than from the warmup.
 *
 * Every load is defensive: a missing file is a silent cache miss, a
 * corrupt or mismatched file is a warning plus a miss. The simulation
 * from scratch is always the fallback, never a wrong result.
 */

#ifndef NUCA_SIM_CHECKPOINT_HH
#define NUCA_SIM_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"
#include "sim/system_config.hh"

namespace nuca {

class CmpSystem;

/** Checkpoint knobs (REPRO_CKPT_DIR / REPRO_CKPT_PERIOD /
 *  REPRO_CKPT_MAX_MB). */
struct CheckpointConfig
{
    /** Cache directory; empty disables checkpointing entirely. */
    std::string dir;

    /** Cycles between mid-run snapshots; 0 disables them. */
    Cycle period = 0;

    /** Size cap on the cache directory in MiB; 0 = unbounded
     *  (REPRO_CKPT_MAX_MB). */
    std::uint64_t maxMb = 0;

    bool enabled() const { return !dir.empty(); }

    static CheckpointConfig fromEnv();
};

/**
 * Digest of every SystemConfig field, stored in the checkpoint file
 * header: a checkpoint written under one configuration refuses to
 * load into a system built from another.
 */
std::uint64_t configHash(const SystemConfig &config);

/** Content key of a warmup artifact. */
std::uint64_t warmupKey(const SystemConfig &config,
                        const std::vector<std::string> &apps,
                        std::uint64_t seed, Cycle warmupCycles);

/** Content key of a mid-run artifact (warmup key + measure length). */
std::uint64_t runKey(const SystemConfig &config,
                     const std::vector<std::string> &apps,
                     std::uint64_t seed, Cycle warmupCycles,
                     Cycle measureCycles);

/** File path of the artifact with content key @p key. */
std::string warmupPath(const CheckpointConfig &cfg, std::uint64_t key);
std::string runPath(const CheckpointConfig &cfg, std::uint64_t key);

/**
 * Restore @p system from the checkpoint at @p path if one is there.
 * A missing file is a silent miss; a corrupt, truncated, or
 * mismatched file warns and is treated as a miss.
 *
 * @return true when the system now holds the checkpointed state.
 */
bool tryRestoreCheckpoint(CmpSystem &system, const std::string &path,
                          std::uint64_t configHash);

/**
 * Snapshot @p system to @p path (atomically, via tmp + rename).
 * Best-effort: an unwritable directory warns instead of failing the
 * run — the cache is an accelerator, not a dependency.
 */
void saveCheckpoint(const CmpSystem &system, const std::string &path,
                    std::uint64_t configHash);

/** Delete the artifact at @p path, ignoring a missing file. */
void removeCheckpoint(const std::string &path);

/**
 * Enforce cfg.maxMb on the cache directory: while the total size of
 * its "*.ckpt" files exceeds the cap, delete the least-recently-used
 * one (restores touch their artifact's mtime, so mtime order IS use
 * order). Best-effort and safe under concurrency — a file deleted
 * out from under a reader is just a cache miss. No-op when the cap
 * is 0 or the directory is missing.
 *
 * @return the number of artifacts deleted.
 */
std::size_t pruneCheckpointDir(const CheckpointConfig &cfg);

/**
 * FNV-1a digest of a byte range — the same function every checkpoint
 * content key uses, exported so the service layer can derive keys
 * for non-mix artifacts (miss-curve results) in the same key space.
 */
std::uint64_t hashBytes(const std::uint8_t *data, std::size_t size);

} // namespace nuca

#endif // NUCA_SIM_CHECKPOINT_HH
