#include "sim/telemetry.hh"

#include <cctype>
#include <cstdlib>

#include "base/logging.hh"
#include "base/profiler.hh"
#include "sim/cmp_system.hh"
#include "sim/experiment.hh"
#include "sim/trace_event.hh"

namespace nuca {

JsonlTraceSink::JsonlTraceSink(std::string path,
                               std::size_t buffer_bytes)
    : path_(std::move(path)), bufferBytes_(buffer_bytes)
{
    file_ = std::fopen(path_.c_str(), "w");
    fatal_if(file_ == nullptr, "telemetry: cannot open '", path_,
             "' for writing");
    buffer_.reserve(bufferBytes_);
}

JsonlTraceSink::~JsonlTraceSink()
{
    flush();
    std::fclose(file_);
}

void
JsonlTraceSink::write(const json::Value &record)
{
    if (failed_)
        return;
    buffer_ += record.dump();
    buffer_ += '\n';
    ++records_;
    // A full buffer is handed to stdio in one batched fwrite; only
    // an explicit flush() forces the bytes down to the OS, so the
    // steady-state cost per buffer is exactly one write call.
    if (buffer_.size() >= bufferBytes_)
        drain(false);
}

void
JsonlTraceSink::flush()
{
    drain(true);
}

void
JsonlTraceSink::drain(bool sync)
{
    if (failed_ || (buffer_.empty() && !sync))
        return;
    prof::Scope profFlush(prof::Phase::TelemetryFlush);
    prof::add(prof::Counter::TraceFlushes, 1);
    std::size_t written = buffer_.size();
    if (!buffer_.empty()) {
        written = std::fwrite(buffer_.data(), 1, buffer_.size(),
                              file_);
    }
    if (written != buffer_.size() ||
        (sync && std::fflush(file_) != 0)) {
        // Losing telemetry must not kill the simulation that produces
        // it; warn once and drop the remainder of this trace.
        failed_ = true;
        warn("telemetry: write to '", path_,
             "' failed; dropping the rest of this trace");
    }
    buffer_.clear();
}

TelemetryConfig
TelemetryConfig::fromEnv()
{
    TelemetryConfig config;
    if (const char *path = std::getenv("REPRO_TRACE");
        path != nullptr && *path != '\0')
        config.tracePath = path;
    config.samplePeriod =
        envOr("REPRO_TRACE_PERIOD", config.samplePeriod);
    fatal_if(config.samplePeriod == 0,
             "REPRO_TRACE_PERIOD must be positive");
    config.heatmap = envOr("REPRO_HEATMAP", 0) != 0;
    config.heatmapBuckets = static_cast<unsigned>(
        envOr("REPRO_HEATMAP_BUCKETS", config.heatmapBuckets));
    fatal_if(config.heatmapBuckets == 0,
             "REPRO_HEATMAP_BUCKETS must be positive");
    return config;
}

std::string
sanitizeLabel(const std::string &label)
{
    std::string safe;
    safe.reserve(label.size());
    for (const char c : label) {
        const auto u = static_cast<unsigned char>(c);
        if (std::isalnum(u) || c == '.' || c == '-' || c == '_') {
            safe += c;
        } else if (safe.empty() || safe.back() != '_') {
            // Slashes, whitespace and other shell/filesystem
            // metacharacters collapse runs-of-unsafe into one '_'.
            safe += '_';
        }
    }
    bool anySafe = false;
    for (const char c : safe)
        anySafe |= c != '_';
    return anySafe ? safe : "trace";
}

std::string
tracePathFor(const std::string &base, const std::string &label)
{
    if (label.empty())
        return base;

    const std::string safe = sanitizeLabel(label);

    // Insert the label before the filename's extension so the files
    // keep sorting (and opening) as traces of the base name.
    const std::size_t slash = base.find_last_of('/');
    const std::size_t dot = base.find_last_of('.');
    if (dot != std::string::npos &&
        (slash == std::string::npos || dot > slash)) {
        return base.substr(0, dot) + "." + safe + base.substr(dot);
    }
    return base + "." + safe;
}

std::unique_ptr<TraceSink>
sinkFromEnv(const std::string &label)
{
    const TelemetryConfig config = TelemetryConfig::fromEnv();
    if (!config.enabled())
        return nullptr;
    return std::make_unique<JsonlTraceSink>(
        tracePathFor(config.tracePath, label));
}

std::unique_ptr<TraceSink>
attachTelemetryFromEnv(CmpSystem &system, const std::string &label)
{
    const TelemetryConfig config = TelemetryConfig::fromEnv();
    auto sink = sinkFromEnv(label);
    if (sink) {
        system.attachTelemetry(sink.get(), config.samplePeriod);
        // Heatmap records ride the sample cadence, so without a sink
        // there is nowhere for them to go and counting would be
        // wasted work.
        if (config.heatmap)
            system.enableHeatmap(config.heatmapBuckets);
    }
    TraceEventLog &events = traceEventsFromEnv();
    if (events.enabled())
        system.attachTraceEvents(&events, label.empty() ? "system"
                                                        : label);
    return sink;
}

} // namespace nuca
