#include "sim/system_config.hh"

#include "base/logging.hh"

namespace nuca {

std::string
to_string(L3Scheme scheme)
{
    switch (scheme) {
      case L3Scheme::Private:
        return "private";
      case L3Scheme::Shared:
        return "shared";
      case L3Scheme::Adaptive:
        return "adaptive";
      case L3Scheme::RandomReplacement:
        return "random-replacement";
    }
    panic("unknown L3 scheme");
}

SystemConfig
SystemConfig::baseline(L3Scheme scheme)
{
    SystemConfig cfg;
    cfg.scheme = scheme;
    return cfg;
}

SystemConfig
SystemConfig::quadSizePrivate()
{
    SystemConfig cfg = baseline(L3Scheme::Private);
    // Each private cache grows to the size (and associativity) of
    // the shared cache while keeping the private hit latency: an
    // idealized upper bound, exactly as Figure 7 uses it.
    cfg.l3SizePerCoreBytes = 4ull << 20;
    cfg.l3LocalAssoc = 16;
    return cfg;
}

SystemConfig
SystemConfig::large8MB(L3Scheme scheme)
{
    SystemConfig cfg = baseline(scheme);
    // 8 MB total: 2 MB per core. The paper keeps the 4 MB timing
    // model for a simple comparison (Section 4.4).
    cfg.l3SizePerCoreBytes = 2ull << 20;
    return cfg;
}

SystemConfig
SystemConfig::scaledTech(L3Scheme scheme)
{
    SystemConfig cfg = baseline(scheme);
    cfg.coreMem.l2i.hitLatency = 11;
    cfg.coreMem.l2d.hitLatency = 11;
    cfg.l3LocalLatency = 16;
    cfg.l3SharedLatency = 24;
    cfg.memFirstChunkPrivate = 330;
    cfg.memFirstChunkShared = 338;
    return cfg;
}

} // namespace nuca
