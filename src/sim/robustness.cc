#include "sim/robustness.hh"

#include <cstdlib>
#include <string>

#include "base/logging.hh"
#include "sim/experiment.hh"

namespace nuca {

namespace {

/** Raw environment string, or empty when unset. */
std::string
envString(const char *name)
{
    const char *value = std::getenv(name);
    return value == nullptr ? std::string() : std::string(value);
}

/** Parse the decimal suffix of "<kind>:<number>" specs. */
std::uint64_t
parseArg(const char *what, const std::string &spec, std::size_t colon)
{
    const std::string digits = spec.substr(colon + 1);
    fatal_if(digits.empty(), what, " '", spec,
             "' is missing its numeric argument");
    std::uint64_t value = 0;
    for (const char c : digits) {
        fatal_if(c < '0' || c > '9', what, " '", spec,
                 "' has a non-numeric argument");
        fatal_if(value > (~0ull - 9) / 10, what, " '", spec,
                 "' argument overflows 64 bits");
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return value;
}

} // namespace

SweepPolicy
SweepPolicy::fromEnv()
{
    SweepPolicy policy;
    const std::string spec = envString("REPRO_FAIL");
    if (spec.empty() || spec == "abort")
        return policy;
    if (spec == "skip") {
        policy.onFail = FailPolicy::Skip;
        return policy;
    }
    if (spec.rfind("retry:", 0) == 0) {
        policy.onFail = FailPolicy::Retry;
        policy.retries = static_cast<unsigned>(
            parseArg("REPRO_FAIL", spec, spec.find(':')));
        fatal_if(policy.retries == 0,
                 "REPRO_FAIL=retry:N needs N >= 1, got '", spec, "'");
        return policy;
    }
    fatal("REPRO_FAIL must be abort, skip, or retry:N, got '", spec,
          "'");
}

const char *
to_string(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None:
        return "none";
      case FaultKind::LruCorrupt:
        return "lru_corrupt";
      case FaultKind::MshrLeak:
        return "mshr_leak";
      case FaultKind::ChannelStall:
        return "channel_stall";
      case FaultKind::ThrowJob:
        return "throw_job";
    }
    panic("unknown fault kind");
}

FaultSpec
FaultSpec::fromEnv()
{
    FaultSpec fault;
    const std::string spec = envString("REPRO_FAULT");
    if (spec.empty())
        return fault;

    const std::size_t colon = spec.find(':');
    const std::string kind = spec.substr(0, colon);
    if (kind == "lru_corrupt") {
        fault.kind = FaultKind::LruCorrupt;
    } else if (kind == "mshr_leak") {
        fault.kind = FaultKind::MshrLeak;
    } else if (kind == "channel_stall") {
        fault.kind = FaultKind::ChannelStall;
    } else if (kind == "throw_job") {
        fault.kind = FaultKind::ThrowJob;
        fatal_if(colon == std::string::npos,
                 "REPRO_FAULT=throw_job needs a job index "
                 "(throw_job:K)");
    } else {
        fatal("REPRO_FAULT kind must be lru_corrupt, mshr_leak, "
              "channel_stall, or throw_job, got '", spec, "'");
    }
    if (colon != std::string::npos)
        fault.arg = parseArg("REPRO_FAULT", spec, colon);
    return fault;
}

RobustnessConfig
RobustnessConfig::fromEnv()
{
    RobustnessConfig config;
    config.checkEnabled = envOr("REPRO_CHECK", 0) != 0;
    config.checkPeriod =
        envOr("REPRO_CHECK_PERIOD", config.checkPeriod);
    fatal_if(config.checkEnabled && config.checkPeriod == 0,
             "REPRO_CHECK_PERIOD must be positive");

    config.watchdogEnabled = envOr("REPRO_WATCHDOG", 1) != 0;
    config.watchdogWindow =
        envOr("REPRO_WATCHDOG_WINDOW", config.watchdogWindow);
    fatal_if(config.watchdogEnabled && config.watchdogWindow == 0,
             "REPRO_WATCHDOG_WINDOW must be positive");
    config.mshrAgeBound =
        envOr("REPRO_WATCHDOG_MSHR_AGE", config.watchdogWindow);
    fatal_if(config.watchdogEnabled && config.mshrAgeBound == 0,
             "REPRO_WATCHDOG_MSHR_AGE must be positive");

    config.maxCycles = envOr("REPRO_MAX_CYCLES", 0);
    config.fault = FaultSpec::fromEnv();
    return config;
}

bool
resumeFromEnv()
{
    return envOr("REPRO_RESUME", 0) != 0;
}

} // namespace nuca
