#include "sim/robustness.hh"

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "base/logging.hh"
#include "sim/experiment.hh"

namespace nuca {

namespace {

/** Parse the decimal suffix of "<kind>:<number>" specs. */
std::uint64_t
parseArg(const char *what, const std::string &spec, std::size_t colon)
{
    const std::string digits = spec.substr(colon + 1);
    fatal_if(digits.empty(), what, " '", spec,
             "' is missing its numeric argument");
    std::uint64_t value = 0;
    for (const char c : digits) {
        fatal_if(c < '0' || c > '9', what, " '", spec,
                 "' has a non-numeric argument");
        fatal_if(value > (~0ull - 9) / 10, what, " '", spec,
                 "' argument overflows 64 bits");
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return value;
}

} // namespace

namespace {

/** The REPRO_FAIL part of the policy (mode + retry budget). */
SweepPolicy
failPolicyFromEnv()
{
    SweepPolicy policy;
    const std::string spec = envString("REPRO_FAIL");
    if (spec.empty() || spec == "abort")
        return policy;
    if (spec == "skip") {
        policy.onFail = FailPolicy::Skip;
        return policy;
    }
    if (spec.rfind("retry:", 0) == 0) {
        policy.onFail = FailPolicy::Retry;
        policy.retries = static_cast<unsigned>(
            parseArg("REPRO_FAIL", spec, spec.find(':')));
        fatal_if(policy.retries == 0,
                 "REPRO_FAIL=retry:N needs N >= 1, got '", spec, "'");
        return policy;
    }
    fatal("REPRO_FAIL must be abort, skip, or retry:N, got '", spec,
          "'");
}

} // namespace

SweepPolicy
SweepPolicy::fromEnv()
{
    SweepPolicy policy = failPolicyFromEnv();
    policy.backoffMs = static_cast<unsigned>(
        envOr("REPRO_RETRY_BACKOFF_MS", policy.backoffMs));
    policy.maxCrashes = static_cast<unsigned>(
        envOr("REPRO_QUARANTINE", policy.maxCrashes));
    return policy;
}

const char *
to_string(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None:
        return "none";
      case FaultKind::LruCorrupt:
        return "lru_corrupt";
      case FaultKind::MshrLeak:
        return "mshr_leak";
      case FaultKind::ChannelStall:
        return "channel_stall";
      case FaultKind::ThrowJob:
        return "throw_job";
      case FaultKind::SegvJob:
        return "segv";
      case FaultKind::OomJob:
        return "oom";
      case FaultKind::HangJob:
        return "hang";
      case FaultKind::SigtermJob:
        return "sigterm";
    }
    panic("unknown fault kind");
}

FaultSpec
FaultSpec::fromEnv()
{
    FaultSpec fault;
    const std::string spec = envString("REPRO_FAULT");
    if (spec.empty())
        return fault;

    const std::size_t colon = spec.find(':');
    const std::string kind = spec.substr(0, colon);
    if (kind == "lru_corrupt") {
        fault.kind = FaultKind::LruCorrupt;
    } else if (kind == "mshr_leak") {
        fault.kind = FaultKind::MshrLeak;
    } else if (kind == "channel_stall") {
        fault.kind = FaultKind::ChannelStall;
    } else if (kind == "throw_job") {
        fault.kind = FaultKind::ThrowJob;
    } else if (kind == "segv") {
        fault.kind = FaultKind::SegvJob;
    } else if (kind == "oom") {
        fault.kind = FaultKind::OomJob;
    } else if (kind == "hang") {
        fault.kind = FaultKind::HangJob;
    } else if (kind == "sigterm") {
        fault.kind = FaultKind::SigtermJob;
    } else {
        fatal("REPRO_FAULT kind must be lru_corrupt, mshr_leak, "
              "channel_stall, throw_job, segv, oom, hang, or "
              "sigterm, got '", spec, "'");
    }
    fatal_if(fault.isJobFault() && colon == std::string::npos,
             "REPRO_FAULT=", kind, " needs a job index (", kind,
             ":K)");
    if (colon != std::string::npos)
        fault.arg = parseArg("REPRO_FAULT", spec, colon);
    return fault;
}

namespace {

/**
 * Allocate unboundedly until the allocator gives out. noexcept on
 * purpose: the bad_alloc raised once RLIMIT_AS is exhausted escapes a
 * noexcept frame and std::terminate()s the process (SIGABRT) —
 * modelling memory exhaustion that no handler survives, which is
 * what the proc pool's crash classification must catch. The chunks
 * are deliberately never touched, so without an address-space cap
 * the loop consumes virtual reservations, not physical memory, until
 * the (absurdly large) iteration cap aborts anyway.
 */
void
exhaustMemory() noexcept
{
    std::vector<char *> chunks;
    for (int i = 0; i < (1 << 20); ++i)
        chunks.push_back(new char[16u << 20]);
}

} // namespace

void
injectJobFault(const FaultSpec &fault, std::size_t job,
               const std::string &label)
{
    if (!fault.isJobFault() || fault.arg != job)
        return;
    switch (fault.kind) {
      case FaultKind::ThrowJob:
        throw SimulationError("fault injection: sweep job " +
                              std::to_string(job) + " (" + label +
                              ") threw");
      case FaultKind::SegvJob:
        std::raise(SIGSEGV);
        std::abort(); // raise cannot return from SIGSEGV's default
      case FaultKind::OomJob:
        exhaustMemory();
        std::abort(); // the iteration cap fired before the rlimit
      case FaultKind::HangJob:
        // Wedge without burning CPU: the wall-clock deadline, not
        // RLIMIT_CPU, is the detector under test.
        for (;;)
            std::this_thread::sleep_for(std::chrono::seconds(1));
      case FaultKind::SigtermJob:
        // Delivered to this very process: with the graceful-stop
        // handlers installed the flag goes up, this job finishes
        // normally, and the sweep winds down. Without them the
        // default disposition kills the process — which is exactly
        // why the supervisor installs the handlers first.
        std::raise(SIGTERM);
        return;
      default:
        return;
    }
}

RobustnessConfig
RobustnessConfig::fromEnv()
{
    RobustnessConfig config;
    config.checkEnabled = envOr("REPRO_CHECK", 0) != 0;
    config.checkPeriod =
        envOr("REPRO_CHECK_PERIOD", config.checkPeriod);
    fatal_if(config.checkEnabled && config.checkPeriod == 0,
             "REPRO_CHECK_PERIOD must be positive");

    config.watchdogEnabled = envOr("REPRO_WATCHDOG", 1) != 0;
    config.watchdogWindow =
        envOr("REPRO_WATCHDOG_WINDOW", config.watchdogWindow);
    fatal_if(config.watchdogEnabled && config.watchdogWindow == 0,
             "REPRO_WATCHDOG_WINDOW must be positive");
    config.mshrAgeBound =
        envOr("REPRO_WATCHDOG_MSHR_AGE", config.watchdogWindow);
    fatal_if(config.watchdogEnabled && config.mshrAgeBound == 0,
             "REPRO_WATCHDOG_MSHR_AGE must be positive");

    config.maxCycles = envOr("REPRO_MAX_CYCLES", 0);
    config.fault = FaultSpec::fromEnv();
    return config;
}

bool
resumeFromEnv()
{
    return envOr("REPRO_RESUME", 0) != 0;
}

namespace {

volatile std::sig_atomic_t g_sweep_signal = 0;
bool g_handlers_installed = false;
void (*g_prev_int)(int) = SIG_DFL;
void (*g_prev_term)(int) = SIG_DFL;

extern "C" void
sweepSignalHandler(int sig)
{
    // Second signal: the operator means it. _exit is async-signal-
    // safe; 128+sig is the shell's convention for signal deaths.
    if (g_sweep_signal != 0)
        ::_Exit(128 + sig);
    g_sweep_signal = sig;
}

} // namespace

void
installSweepInterruptHandlers()
{
    if (g_handlers_installed)
        return;
    // Each install opens a fresh interrupt window: a signal consumed
    // by a previous sweep must not abort this one.
    g_sweep_signal = 0;
    g_prev_int = std::signal(SIGINT, sweepSignalHandler);
    g_prev_term = std::signal(SIGTERM, sweepSignalHandler);
    g_handlers_installed = true;
}

void
restoreSweepInterruptHandlers()
{
    if (!g_handlers_installed)
        return;
    std::signal(SIGINT, g_prev_int);
    std::signal(SIGTERM, g_prev_term);
    g_handlers_installed = false;
}

bool
sweepInterruptRequested()
{
    return g_sweep_signal != 0;
}

int
sweepInterruptSignal()
{
    return static_cast<int>(g_sweep_signal);
}

void
clearSweepInterrupt()
{
    g_sweep_signal = 0;
}

} // namespace nuca
