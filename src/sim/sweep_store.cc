#include "sim/sweep_store.hh"

#include "base/logging.hh"
#include "sim/json_writer.hh"

namespace nuca {

namespace {

json::Value
doubleArray(const std::vector<double> &values)
{
    json::Value arr = json::Value::array();
    for (const double v : values)
        arr.append(v);
    return arr;
}

std::vector<double>
numberVector(const json::Value &arr)
{
    std::vector<double> out;
    out.reserve(arr.size());
    for (std::size_t i = 0; i < arr.size(); ++i)
        out.push_back(arr.at(i).asNumber());
    return out;
}

} // namespace

SweepStore::SweepStore(std::string path) : path_(std::move(path))
{
    file_ = std::fopen(path_.c_str(), "a");
    fatal_if(file_ == nullptr, "sweep store: cannot open '", path_,
             "' for appending");
}

SweepStore::~SweepStore()
{
    std::fclose(file_);
}

void
SweepStore::append(const SweepRecord &record)
{
    json::Value line = json::Value::object();
    line.set("label", record.label);
    line.set("status", to_string(record.status));
    if (!record.error.empty())
        line.set("error", record.error);
    line.set("ipc", doubleArray(record.result.ipc));
    line.set("l3apk",
             doubleArray(record.result.l3AccessesPerKilocycle));
    const std::string text = line.dump() + "\n";

    std::lock_guard<std::mutex> guard(mutex_);
    const std::size_t written =
        std::fwrite(text.data(), 1, text.size(), file_);
    // The sidecar IS the crash-safety mechanism; losing it silently
    // would defeat its purpose, so short writes are fatal.
    fatal_if(written != text.size() || std::fflush(file_) != 0,
             "sweep store: short write to '", path_, "'");
}

std::vector<SweepRecord>
SweepStore::load(const std::string &path)
{
    std::vector<SweepRecord> out;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return out;
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t end = text.find('\n', pos);
        if (end == std::string::npos)
            end = text.size();
        const std::string line = text.substr(pos, end - pos);
        pos = end + 1;
        if (line.empty())
            continue;
        const auto parsed = json::Value::tryParse(line);
        // A torn trailing line is the expected signature of a killed
        // run; skip it (and anything else unparsable) rather than die.
        if (!parsed || parsed->type() != json::Value::Type::Object ||
            !parsed->contains("label") || !parsed->contains("status"))
            continue;

        SweepRecord record;
        record.label = parsed->at("label").asString();
        const std::string &status = parsed->at("status").asString();
        if (status == "ok")
            record.status = JobStatus::Ok;
        else if (status == "stalled")
            record.status = JobStatus::Stalled;
        else if (status == "over_budget")
            record.status = JobStatus::OverBudget;
        else
            record.status = JobStatus::Failed;
        if (parsed->contains("error"))
            record.error = parsed->at("error").asString();
        if (parsed->contains("ipc"))
            record.result.ipc = numberVector(parsed->at("ipc"));
        if (parsed->contains("l3apk")) {
            record.result.l3AccessesPerKilocycle =
                numberVector(parsed->at("l3apk"));
        }
        out.push_back(std::move(record));
    }
    return out;
}

} // namespace nuca
