#include "sim/sweep_store.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "base/logging.hh"

namespace nuca {

namespace {

json::Value
doubleArray(const std::vector<double> &values)
{
    json::Value arr = json::Value::array();
    for (const double v : values)
        arr.append(v);
    return arr;
}

std::vector<double>
numberVector(const json::Value &arr)
{
    std::vector<double> out;
    out.reserve(arr.size());
    for (std::size_t i = 0; i < arr.size(); ++i)
        out.push_back(arr.at(i).asNumber());
    return out;
}

} // namespace

json::Value
mixResultToJson(const MixResult &result)
{
    json::Value obj = json::Value::object();
    obj.set("ipc", doubleArray(result.ipc));
    obj.set("l3apk", doubleArray(result.l3AccessesPerKilocycle));
    // Only miss-curve service jobs carry a curve; omitting the key
    // otherwise keeps classic records byte-identical.
    if (!result.curve.empty())
        obj.set("curve", doubleArray(result.curve));
    return obj;
}

MixResult
mixResultFromJson(const json::Value &obj)
{
    MixResult result;
    if (obj.contains("ipc"))
        result.ipc = numberVector(obj.at("ipc"));
    if (obj.contains("l3apk")) {
        result.l3AccessesPerKilocycle =
            numberVector(obj.at("l3apk"));
    }
    if (obj.contains("curve"))
        result.curve = numberVector(obj.at("curve"));
    return result;
}

JobStatus
jobStatusFromString(const std::string &name)
{
    if (name == "ok")
        return JobStatus::Ok;
    if (name == "stalled")
        return JobStatus::Stalled;
    if (name == "over_budget")
        return JobStatus::OverBudget;
    if (name == "crashed")
        return JobStatus::Crashed;
    if (name == "timed_out")
        return JobStatus::TimedOut;
    if (name == "quarantined")
        return JobStatus::Quarantined;
    if (name == "queued")
        return JobStatus::Queued;
    if (name == "preempted")
        return JobStatus::Preempted;
    if (name == "cache_hit")
        return JobStatus::CacheHit;
    if (name == "interrupted")
        return JobStatus::Interrupted;
    if (name == "cancelled")
        return JobStatus::Cancelled;
    return JobStatus::Failed;
}

SweepStore::SweepStore(std::string path) : path_(std::move(path))
{
    file_ = std::fopen(path_.c_str(), "a");
    fatal_if(file_ == nullptr, "sweep store: cannot open '", path_,
             "' for appending");
    sync_ = envOr("REPRO_SYNC", 0) != 0;
}

SweepStore::~SweepStore()
{
    std::fclose(file_);
}

void
SweepStore::append(const SweepRecord &record)
{
    json::Value line = json::Value::object();
    line.set("label", record.label);
    line.set("status", to_string(record.status));
    if (!record.error.empty())
        line.set("error", record.error);
    const json::Value payload = mixResultToJson(record.result);
    line.set("ipc", payload.at("ipc"));
    line.set("l3apk", payload.at("l3apk"));
    if (payload.contains("curve"))
        line.set("curve", payload.at("curve"));
    if (record.timed) {
        line.set("queue_ms", record.queueMs);
        line.set("preempts", record.preempts);
    }
    const std::string text = line.dump() + "\n";

    std::lock_guard<std::mutex> guard(mutex_);
    const std::size_t written =
        std::fwrite(text.data(), 1, text.size(), file_);
    // The sidecar IS the crash-safety mechanism; losing it silently
    // would defeat its purpose, so short writes are fatal.
    fatal_if(written != text.size() || std::fflush(file_) != 0,
             "sweep store: short write to '", path_, "'");
#if defined(__unix__) || defined(__APPLE__)
    // fflush hands the bytes to the kernel (enough to survive this
    // process dying, the default guarantee); REPRO_SYNC=1 pushes
    // them to stable storage so even a host crash loses at most the
    // in-flight record.
    fatal_if(sync_ && ::fsync(::fileno(file_)) != 0,
             "sweep store: fsync failed on '", path_, "'");
#endif
}

std::vector<SweepRecord>
SweepStore::load(const std::string &path)
{
    std::vector<SweepRecord> out;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return out;
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t end = text.find('\n', pos);
        if (end == std::string::npos)
            end = text.size();
        const std::string line = text.substr(pos, end - pos);
        pos = end + 1;
        if (line.empty())
            continue;
        const auto parsed = json::Value::tryParse(line);
        // A torn trailing line is the expected signature of a killed
        // run; skip it (and anything else unparsable) rather than die.
        if (!parsed || parsed->type() != json::Value::Type::Object ||
            !parsed->contains("label") || !parsed->contains("status"))
            continue;

        SweepRecord record;
        record.label = parsed->at("label").asString();
        record.status =
            jobStatusFromString(parsed->at("status").asString());
        if (parsed->contains("error"))
            record.error = parsed->at("error").asString();
        record.result = mixResultFromJson(*parsed);
        if (parsed->contains("queue_ms")) {
            record.timed = true;
            record.queueMs = static_cast<std::uint64_t>(
                parsed->at("queue_ms").asNumber());
            if (parsed->contains("preempts")) {
                record.preempts = static_cast<std::uint64_t>(
                    parsed->at("preempts").asNumber());
            }
        }
        out.push_back(std::move(record));
    }
    return out;
}

} // namespace nuca
