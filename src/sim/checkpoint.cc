#include "sim/checkpoint.hh"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <system_error>

#include "base/logging.hh"
#include "base/profiler.hh"
#include "serialize/checkpoint_io.hh"
#include "serialize/serializer.hh"
#include "sim/cmp_system.hh"
#include "sim/experiment.hh"

namespace nuca {

namespace {

/** FNV-1a over a byte range, continuing from @p hash. */
std::uint64_t
fnv1a(std::uint64_t hash, const std::uint8_t *data, std::size_t size)
{
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= data[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

constexpr std::uint64_t fnvOffsetBasis = 0xcbf29ce484222325ull;

void
putCacheLevelParams(Serializer &s, const CacheLevelParams &p)
{
    s.putU64(p.sizeBytes);
    s.putU32(p.assoc);
    s.putU64(p.hitLatency);
    s.putU32(p.mshrs);
}

/**
 * Canonical encoding of every SystemConfig field. Uses the same
 * fixed-width wire format as checkpoints, so the digest is stable
 * across platforms and compiler settings.
 */
void
encodeConfig(Serializer &s, const SystemConfig &c)
{
    s.putU32(c.numCores);
    s.putU32(static_cast<std::uint32_t>(c.scheme));

    s.putU32(c.core.ruuSize);
    s.putU32(c.core.lsqSize);
    s.putU32(c.core.fetchQueueSize);
    s.putU32(c.core.fetchWidth);
    s.putU32(c.core.dispatchWidth);
    s.putU32(c.core.issueWidth);
    s.putU32(c.core.commitWidth);
    s.putU64(c.core.mispredictPenalty);
    s.putU32(c.core.predictor.bimodalEntries);
    s.putU32(c.core.predictor.historyEntries);
    s.putU32(c.core.predictor.historyBits);
    s.putU32(c.core.predictor.chooserEntries);
    s.putU32(c.core.predictor.btbEntries);
    s.putU32(c.core.predictor.btbAssoc);
    s.putU32(c.core.funcUnits.intAlus);
    s.putU32(c.core.funcUnits.fpAlus);
    s.putU32(c.core.funcUnits.intMultDiv);
    s.putU32(c.core.funcUnits.fpMultDiv);
    s.putU32(c.core.funcUnits.memPorts);

    putCacheLevelParams(s, c.coreMem.l1i);
    putCacheLevelParams(s, c.coreMem.l1d);
    putCacheLevelParams(s, c.coreMem.l2i);
    putCacheLevelParams(s, c.coreMem.l2d);
    s.putU32(c.coreMem.tlbEntries);
    s.putU64(c.coreMem.tlbMissPenalty);
    s.putBool(c.coreMem.enablePrefetcher);
    s.putU32(c.coreMem.prefetcher.tableEntries);
    s.putU32(c.coreMem.prefetcher.degree);
    s.putU32(c.coreMem.prefetcher.confidenceThreshold);
    s.putBool(c.coreMem.prefetcher.zoneStreams);
    s.putU32(c.coreMem.prefetcher.zoneEntries);

    s.putU64(c.l3SizePerCoreBytes);
    s.putU32(c.l3LocalAssoc);
    s.putU64(c.l3LocalLatency);
    s.putU64(c.l3SharedLatency);
    s.putU64(c.memFirstChunkShared);
    s.putU64(c.memFirstChunkPrivate);
    s.putU64(c.epochMisses);
    s.putU32(c.shadowSampleShift);
    s.putBool(c.adaptationEnabled);
    s.putBool(c.coherentSharing);
    s.putU32(static_cast<std::uint32_t>(c.l3ReplPolicy));
    s.putU64(c.schemeSeed);
}

std::uint64_t
keyOf(const SystemConfig &config,
      const std::vector<std::string> &apps, std::uint64_t seed,
      Cycle warmupCycles, Cycle measureCycles, bool midRun)
{
    Serializer s;
    encodeConfig(s, config);
    s.putU64(apps.size());
    for (const auto &app : apps)
        s.putString(app);
    s.putU64(seed);
    s.putU64(warmupCycles);
    if (midRun)
        s.putU64(measureCycles);
    return fnv1a(fnvOffsetBasis, s.bytes().data(), s.size());
}

std::string
artifactPath(const CheckpointConfig &cfg, std::uint64_t key,
             const char *suffix)
{
    static const char digits[] = "0123456789abcdef";
    std::string name(16, '0');
    for (int i = 15; i >= 0; --i) {
        name[i] = digits[key & 0xf];
        key >>= 4;
    }
    return cfg.dir + "/" + name + suffix;
}

} // namespace

CheckpointConfig
CheckpointConfig::fromEnv()
{
    CheckpointConfig cfg;
    const char *dir = std::getenv("REPRO_CKPT_DIR");
    if (dir != nullptr && *dir != '\0')
        cfg.dir = dir;
    cfg.period = envOr("REPRO_CKPT_PERIOD", 0);
    cfg.maxMb = envOr("REPRO_CKPT_MAX_MB", 0);
    return cfg;
}

std::uint64_t
hashBytes(const std::uint8_t *data, std::size_t size)
{
    return fnv1a(fnvOffsetBasis, data, size);
}

std::uint64_t
configHash(const SystemConfig &config)
{
    Serializer s;
    encodeConfig(s, config);
    return fnv1a(fnvOffsetBasis, s.bytes().data(), s.size());
}

std::uint64_t
warmupKey(const SystemConfig &config,
          const std::vector<std::string> &apps, std::uint64_t seed,
          Cycle warmupCycles)
{
    return keyOf(config, apps, seed, warmupCycles, 0, false);
}

std::uint64_t
runKey(const SystemConfig &config,
       const std::vector<std::string> &apps, std::uint64_t seed,
       Cycle warmupCycles, Cycle measureCycles)
{
    return keyOf(config, apps, seed, warmupCycles, measureCycles,
                 true);
}

std::string
warmupPath(const CheckpointConfig &cfg, std::uint64_t key)
{
    return artifactPath(cfg, key, ".warm.ckpt");
}

std::string
runPath(const CheckpointConfig &cfg, std::uint64_t key)
{
    return artifactPath(cfg, key, ".run.ckpt");
}

bool
tryRestoreCheckpoint(CmpSystem &system, const std::string &path,
                     std::uint64_t configHash)
{
    if (!checkpointFileExists(path))
        return false;
    try {
        prof::Scope profRestore(prof::Phase::CheckpointRestore);
        const auto payload = readCheckpointFile(path, configHash);
        prof::add(prof::Counter::CheckpointBytesIn, payload.size());
        Deserializer d(payload);
        system.restore(d);
        d.expectEnd("checkpoint payload");
    } catch (const CheckpointError &e) {
        // A stale or corrupt cache entry must never poison a run;
        // fall back to simulating from scratch.
        warn("ignoring unusable checkpoint ", path, ": ", e.what());
        return false;
    }
    // Touch the artifact so the size-capped prune's mtime order is
    // true LRU order, not just write order. Best-effort.
    std::error_code ec;
    std::filesystem::last_write_time(
        path, std::filesystem::file_time_type::clock::now(), ec);
    return true;
}

void
saveCheckpoint(const CmpSystem &system, const std::string &path,
               std::uint64_t configHash)
{
    try {
        prof::Scope profSave(prof::Phase::CheckpointSave);
        std::error_code ec;
        std::filesystem::create_directories(
            std::filesystem::path(path).parent_path(), ec);
        Serializer s;
        system.checkpoint(s);
        prof::add(prof::Counter::CheckpointBytesOut, s.size());
        writeCheckpointFile(path, configHash, s.bytes());
    } catch (const CheckpointError &e) {
        warn("could not save checkpoint ", path, ": ", e.what());
    }
}

void
removeCheckpoint(const std::string &path)
{
    std::error_code ec;
    std::filesystem::remove(path, ec);
}

std::size_t
pruneCheckpointDir(const CheckpointConfig &cfg)
{
    if (!cfg.enabled() || cfg.maxMb == 0)
        return 0;

    namespace fs = std::filesystem;
    struct Entry
    {
        fs::path path;
        fs::file_time_type mtime;
        std::uint64_t size;
    };

    std::error_code ec;
    std::vector<Entry> entries;
    std::uint64_t total = 0;
    for (fs::directory_iterator it(cfg.dir, ec), end;
         !ec && it != end; it.increment(ec)) {
        const fs::path &p = it->path();
        if (p.extension() != ".ckpt")
            continue;
        std::error_code fec;
        if (!it->is_regular_file(fec) || fec)
            continue;
        Entry e;
        e.path = p;
        e.size = it->file_size(fec);
        if (fec)
            continue;
        e.mtime = fs::last_write_time(p, fec);
        if (fec)
            continue;
        total += e.size;
        entries.push_back(std::move(e));
    }

    const std::uint64_t cap = cfg.maxMb * 1024 * 1024;
    if (total <= cap)
        return 0;

    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.mtime < b.mtime;
              });
    std::size_t pruned = 0;
    for (const Entry &e : entries) {
        if (total <= cap)
            break;
        std::error_code rec;
        if (fs::remove(e.path, rec) && !rec) {
            total -= e.size;
            ++pruned;
        }
    }
    return pruned;
}

} // namespace nuca
