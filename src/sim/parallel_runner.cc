#include "sim/parallel_runner.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "base/logging.hh"
#include "base/random.hh"
#include "sim/experiment.hh"

namespace nuca {

unsigned
jobsFromEnv()
{
    const auto jobs = envOr("REPRO_JOBS", 0);
    if (jobs != 0)
        return static_cast<unsigned>(jobs);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

const char *
to_string(JobStatus status)
{
    switch (status) {
      case JobStatus::Ok:
        return "ok";
      case JobStatus::Failed:
        return "failed";
      case JobStatus::Stalled:
        return "stalled";
      case JobStatus::OverBudget:
        return "over_budget";
      case JobStatus::Crashed:
        return "crashed";
      case JobStatus::TimedOut:
        return "timed_out";
      case JobStatus::Quarantined:
        return "quarantined";
      case JobStatus::Queued:
        return "queued";
      case JobStatus::Preempted:
        return "preempted";
      case JobStatus::CacheHit:
        return "cache_hit";
      case JobStatus::Interrupted:
        return "interrupted";
      case JobStatus::Cancelled:
        return "cancelled";
    }
    panic("unknown job status");
}

bool
isRetryable(JobStatus status)
{
    switch (status) {
      case JobStatus::Ok:
      case JobStatus::OverBudget:
      case JobStatus::Quarantined:
      case JobStatus::CacheHit:
      case JobStatus::Cancelled:
        return false;
      case JobStatus::Failed:
      case JobStatus::Stalled:
      case JobStatus::Crashed:
      case JobStatus::TimedOut:
      // The non-terminal lifecycle states: by definition another
      // attempt (or the first) is still to come.
      case JobStatus::Queued:
      case JobStatus::Preempted:
      case JobStatus::Interrupted:
        return true;
    }
    panic("unknown job status");
}

unsigned
retryBackoffMs(const SweepPolicy &policy, std::size_t job_index,
               unsigned attempt)
{
    if (policy.backoffMs == 0 || attempt == 0)
        return 0;
    // Exponential in the retry ordinal, capped well before the shift
    // can overflow and at 30 s overall — a sweep's backoff should
    // yield the core, not park the worker for the night.
    constexpr unsigned kCapMs = 30'000;
    const unsigned doublings = std::min(attempt - 1, 20u);
    const std::uint64_t base =
        std::min<std::uint64_t>(std::uint64_t(policy.backoffMs)
                                    << doublings,
                                kCapMs);
    // Deterministic jitter: seeded from (job, attempt) so two workers
    // retrying simultaneously desynchronize, yet every run of the
    // same sweep sleeps the same schedule.
    Rng rng(0x9e3779b97f4a7c15ull ^
            (std::uint64_t(job_index) * 0xdeadbeefull + attempt));
    const std::uint64_t jitter = rng.below(base / 2 + 1);
    return static_cast<unsigned>(
        std::min<std::uint64_t>(base + jitter, kCapMs));
}

namespace parallel_detail {

void
backoffSleep(unsigned delay_ms)
{
    if (delay_ms != 0)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delay_ms));
}

} // namespace parallel_detail

ProgressReporter::ProgressReporter(std::string label,
                                   std::size_t total, bool quiet)
    : label_(std::move(label)), total_(total),
      quiet_(quiet || total == 0)
{
}

void
ProgressReporter::redraw()
{
    if (quiet_)
        return;
    if (failed_ == 0) {
        std::fprintf(stderr, "  [%s] %zu/%zu\r", label_.c_str(),
                     done_, total_);
    } else if (crashed_ == 0) {
        std::fprintf(stderr, "  [%s] %zu/%zu (%zu failed)\r",
                     label_.c_str(), done_ + failed_, total_,
                     failed_);
    } else {
        std::fprintf(stderr,
                     "  [%s] %zu/%zu (%zu failed, %zu crashed)\r",
                     label_.c_str(), done_ + failed_, total_,
                     failed_, crashed_);
    }
    std::fflush(stderr);
}

void
ProgressReporter::completed()
{
    std::lock_guard<std::mutex> guard(mutex_);
    ++done_;
    redraw();
}

void
ProgressReporter::failed()
{
    std::lock_guard<std::mutex> guard(mutex_);
    ++failed_;
    redraw();
}

void
ProgressReporter::crashed()
{
    std::lock_guard<std::mutex> guard(mutex_);
    ++failed_;
    ++crashed_;
    redraw();
}

void
ProgressReporter::finish()
{
    std::lock_guard<std::mutex> guard(mutex_);
    if (quiet_ || finished_)
        return;
    finished_ = true;
    if (failed_ == 0) {
        std::fprintf(stderr, "  [%s] done (%zu jobs)      \n",
                     label_.c_str(), done_);
    } else if (crashed_ == 0) {
        std::fprintf(stderr,
                     "  [%s] done %zu/%zu (%zu failed)      \n",
                     label_.c_str(), done_, total_, failed_);
    } else {
        std::fprintf(
            stderr,
            "  [%s] done %zu/%zu (%zu failed, %zu crashed)      \n",
            label_.c_str(), done_, total_, failed_, crashed_);
    }
    std::fflush(stderr);
}

std::size_t
ProgressReporter::done() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return done_;
}

std::size_t
ProgressReporter::failures() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return failed_;
}

std::size_t
ProgressReporter::crashes() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return crashed_;
}

} // namespace nuca
