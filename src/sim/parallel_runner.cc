#include "sim/parallel_runner.hh"

#include <cstdio>

#include "base/logging.hh"
#include "sim/experiment.hh"

namespace nuca {

unsigned
jobsFromEnv()
{
    const auto jobs = envOr("REPRO_JOBS", 0);
    if (jobs != 0)
        return static_cast<unsigned>(jobs);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

const char *
to_string(JobStatus status)
{
    switch (status) {
      case JobStatus::Ok:
        return "ok";
      case JobStatus::Failed:
        return "failed";
      case JobStatus::Stalled:
        return "stalled";
      case JobStatus::OverBudget:
        return "over_budget";
    }
    panic("unknown job status");
}

ProgressReporter::ProgressReporter(std::string label,
                                   std::size_t total, bool quiet)
    : label_(std::move(label)), total_(total),
      quiet_(quiet || total == 0)
{
}

void
ProgressReporter::redraw()
{
    if (quiet_)
        return;
    if (failed_ == 0) {
        std::fprintf(stderr, "  [%s] %zu/%zu\r", label_.c_str(),
                     done_, total_);
    } else {
        std::fprintf(stderr, "  [%s] %zu/%zu (%zu failed)\r",
                     label_.c_str(), done_ + failed_, total_,
                     failed_);
    }
    std::fflush(stderr);
}

void
ProgressReporter::completed()
{
    std::lock_guard<std::mutex> guard(mutex_);
    ++done_;
    redraw();
}

void
ProgressReporter::failed()
{
    std::lock_guard<std::mutex> guard(mutex_);
    ++failed_;
    redraw();
}

void
ProgressReporter::finish()
{
    std::lock_guard<std::mutex> guard(mutex_);
    if (quiet_ || finished_)
        return;
    finished_ = true;
    if (failed_ == 0) {
        std::fprintf(stderr, "  [%s] done (%zu jobs)      \n",
                     label_.c_str(), done_);
    } else {
        std::fprintf(stderr,
                     "  [%s] done %zu/%zu (%zu failed)      \n",
                     label_.c_str(), done_, total_, failed_);
    }
    std::fflush(stderr);
}

std::size_t
ProgressReporter::done() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return done_;
}

std::size_t
ProgressReporter::failures() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return failed_;
}

} // namespace nuca
