#include "sim/parallel_runner.hh"

#include <cstdio>

#include "sim/experiment.hh"

namespace nuca {

unsigned
jobsFromEnv()
{
    const auto jobs = envOr("REPRO_JOBS", 0);
    if (jobs != 0)
        return static_cast<unsigned>(jobs);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ProgressReporter::ProgressReporter(std::string label,
                                   std::size_t total, bool quiet)
    : label_(std::move(label)), total_(total),
      quiet_(quiet || total == 0)
{
}

void
ProgressReporter::completed()
{
    std::lock_guard<std::mutex> guard(mutex_);
    ++done_;
    if (quiet_)
        return;
    std::fprintf(stderr, "  [%s] %zu/%zu\r", label_.c_str(), done_,
                 total_);
    std::fflush(stderr);
}

void
ProgressReporter::finish()
{
    std::lock_guard<std::mutex> guard(mutex_);
    if (quiet_ || finished_)
        return;
    finished_ = true;
    std::fprintf(stderr, "  [%s] done (%zu jobs)      \n",
                 label_.c_str(), done_);
    std::fflush(stderr);
}

std::size_t
ProgressReporter::done() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return done_;
}

} // namespace nuca
