#include "sim/metrics.hh"

#include <cmath>

#include "base/logging.hh"

namespace nuca {

double
harmonicMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double denom = 0.0;
    for (double v : values) {
        // NaN fails every comparison, so test finiteness explicitly:
        // a NaN IPC (e.g. from a skipped sweep job) must yield the
        // same "no meaningful mean" 0.0 as a zero, not poison sort
        // comparators downstream.
        if (!std::isfinite(v) || v <= 0.0)
            return 0.0;
        denom += 1.0 / v;
    }
    return static_cast<double>(values.size()) / denom;
}

double
arithmeticMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        if (!std::isfinite(v) || v <= 0.0)
            return 0.0;
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

std::vector<double>
speedups(const std::vector<double> &a, const std::vector<double> &b)
{
    panic_if(a.size() != b.size(),
             "speedup vectors differ in length");
    std::vector<double> out;
    out.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        panic_if(b[i] == 0.0, "speedup against a zero baseline");
        out.push_back(a[i] / b[i]);
    }
    return out;
}

} // namespace nuca
