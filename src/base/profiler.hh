/**
 * @file
 * Host-side self-profiler: attributes the simulator's *wall-clock*
 * time (not simulated cycles) to its own components — pipeline
 * stages, cache miss walks, fast-forward horizon computation,
 * telemetry and checkpoint I/O — so optimization rounds start from
 * measurements instead of guesswork.
 *
 * Design constraints, in order:
 *
 *  1. Zero overhead when off. Every Scope constructor starts with a
 *     single relaxed load of a global bool; nothing else happens when
 *     profiling is disabled, so the disabled cost is one predictable
 *     branch per scope (unmeasurable against a ~500 ns tick).
 *
 *  2. Bounded overhead when on. A clock read per pipeline stage per
 *     tick would cost more than the stages themselves, so hot phases
 *     are *sampled*: each phase carries a static `sampleShift`, and
 *     only one in 2^shift entries is actually timed. Reported times
 *     are scaled back up by 2^shift. Cold phases (checkpoint I/O,
 *     telemetry flushes) use shift 0 and are timed exactly.
 *
 *     Sampling must also not *skew*: a timed tick times its nested
 *     stage scopes too, and their clock reads would otherwise land
 *     in the tick's own measurement — scaled by 2^shift, that
 *     inflated core_tick far past wall clock. Timed scopes therefore
 *     link into a per-thread chain; each one, as it closes, charges
 *     one calibrated clock-pair cost to every enclosing open timer,
 *     and subtracts the charges it accumulated from its own
 *     duration before recording it.
 *
 *  3. No interaction with simulated state. The profiler reads the
 *     host clock and thread-local counters only; enabling it cannot
 *     change statistics, telemetry records, or checkpoint bytes
 *     (proven by the differential tests in fastforward_test.cc).
 *
 * Threading: each thread accumulates into its own registered state;
 * a thread's totals are merged into a global accumulator when the
 * thread exits. snapshot() sums the merged totals plus all live
 * registered states, so the common pattern — workers joined, then
 * the main thread reports — needs no synchronization in the scopes
 * themselves.
 *
 * This lives in nuca_base and deliberately has no dependency on the
 * JSON layer in nuca_sim: the machine-readable report is written by
 * hand (names are static strings, values are integers).
 */

#ifndef NUCA_BASE_PROFILER_HH
#define NUCA_BASE_PROFILER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace nuca {
namespace prof {

/**
 * Profiled phases. Each entry has a display name, a parent (for the
 * hierarchical report; kRoot = top level) and a sample shift (time
 * one in 2^shift entries) in the static table in profiler.cc.
 */
enum class Phase : unsigned {
    Run,               ///< CmpSystem::run as a whole
    CoreTick,          ///< one OooCore::tick (sampled)
    CommitStage,       ///< commit/retire inside a sampled tick
    IssueStage,        ///< issue scheduling inside a sampled tick
    DispatchStage,     ///< rename/dispatch inside a sampled tick
    FetchStage,        ///< fetch inside a sampled tick
    CacheMissWalk,     ///< L1-miss path through L2/L3/memory
    L3Access,          ///< the L3 organization's access() itself
    FastForwardHorizon, ///< nextWakeCycle / fastForwardNow bookkeeping
    CoreAdvance,       ///< one batched OooCore::advance call (sampled)
    WakeHeap,          ///< decoupled-loop heap pop/dispatch (sampled)
    UncoreDrain,       ///< decoupled-loop barrier: settle + events
    TelemetrySample,   ///< building one JSONL sample record
    HeatmapSample,     ///< building one spatial heatmap record
    TelemetryFlush,    ///< JsonlTraceSink buffered writes
    CheckpointSave,    ///< serialize + write one checkpoint
    CheckpointRestore, ///< read + deserialize one checkpoint
    Job,               ///< one parallel_runner job (settle excluded)
    NumPhases,
};

/** Monotonic event counters reported next to the phase times. */
enum class Counter : unsigned {
    TraceRecords,      ///< telemetry records written to any sink
    TraceFlushes,      ///< sink flushes (one buffered write each)
    HeatmapRecords,    ///< spatial heatmap records emitted
    FastForwardJumps,  ///< multi-cycle jumps taken
    FastForwardCycles, ///< cycles skipped by those jumps
    DecoupledBatchedCycles, ///< cycles run inside advance() batches
    WakeHeapPops,      ///< decoupled-loop scheduler heap pops
    HorizonRecomputes, ///< per-core wake horizons recomputed
    CheckpointBytesOut, ///< bytes serialized into checkpoints
    CheckpointBytesIn, ///< bytes restored from checkpoints
    JobsFinished,      ///< parallel_runner jobs completed
    JobRetries,        ///< failed attempts granted a re-run
    JobCrashes,        ///< jobs settled crashed/timed_out/quarantined
    NumCounters,
};

constexpr unsigned kNumPhases = static_cast<unsigned>(Phase::NumPhases);
constexpr unsigned kNumCounters =
    static_cast<unsigned>(Counter::NumCounters);

/** Display name of a phase ("core_tick", ...). */
const char *phaseName(Phase p);
/** Parent phase for report nesting, or Phase::NumPhases for roots. */
Phase phaseParent(Phase p);
/** log2 of the phase's sampling divisor (0 = every entry timed). */
unsigned phaseSampleShift(Phase p);

/** Master switch. Reads REPRO_PROFILE at startup; tests flip it. */
bool enabledFromEnv();
void setEnabled(bool on);

inline std::atomic<bool> &
enabledFlag()
{
    static std::atomic<bool> flag{false};
    return flag;
}

inline bool
enabled()
{
    return enabledFlag().load(std::memory_order_relaxed);
}

namespace detail {

using Clock = std::chrono::steady_clock;

/** Per-thread accumulators; registered on first use, merged into the
 * global accumulator when the thread exits. */
struct ThreadState
{
    std::uint64_t entries[kNumPhases] = {};  ///< scope constructions
    std::uint64_t timed[kNumPhases] = {};    ///< entries actually timed
    std::uint64_t ns[kNumPhases] = {};       ///< summed timed durations
    std::uint64_t counters[kNumCounters] = {};
};

/** The calling thread's registered state. */
ThreadState &threadState();

/** A link in the calling thread's chain of open timed scopes, used
 * to charge nested timer overhead back to the enclosing timers. */
struct TimedLink
{
    TimedLink *parent = nullptr;
    std::uint64_t nestedPairs = 0; ///< timed scopes closed inside us
};

/** Top of the calling thread's open-timed-scope chain. */
inline TimedLink *&
timedTop()
{
    thread_local TimedLink *top = nullptr;
    return top;
}

/** Calibrated cost of one nested timed scope as seen by an enclosing
 * timer (two Clock::now() reads plus bookkeeping), in nanoseconds.
 * Measured once per process. */
std::uint64_t timerPairNs();

/** Record a finished timed scope: pop it from the chain, charge one
 * pair cost to each enclosing timer, subtract its own accumulated
 * charges, and add the result to ns[phase]. @p end is taken before
 * this runs so the bookkeeping stays out of the measurement. */
inline void
closeTimedScope(Phase p, Clock::time_point start, Clock::time_point end,
                TimedLink &link)
{
    timedTop() = link.parent;
    for (TimedLink *a = link.parent; a; a = a->parent)
        ++a->nestedPairs;
    auto &ts = threadState();
    const auto i = static_cast<unsigned>(p);
    ++ts.timed[i];
    const auto raw = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count());
    const std::uint64_t skew = link.nestedPairs * timerPairNs();
    ts.ns[i] += raw > skew ? raw - skew : 0;
}

} // namespace detail

/**
 * Should this entry of @p p be timed? Increments the phase's entry
 * count and answers true once per 2^sampleShift entries. Use it to
 * hoist one sampling decision over several MaybeScopes (the core
 * tick samples once and times all four stages of that tick).
 * Answers false when profiling is off.
 */
inline bool
samplePoint(Phase p)
{
    if (!enabled())
        return false;
    auto &ts = detail::threadState();
    const auto i = static_cast<unsigned>(p);
    const std::uint64_t n = ts.entries[i]++;
    const std::uint64_t mask = (1ull << phaseSampleShift(p)) - 1;
    return (n & mask) == 0;
}

/**
 * Self-sampling scoped timer: counts every entry, times one in
 * 2^sampleShift of them. The default for everything but the
 * per-tick pipeline stages.
 */
class Scope
{
  public:
    explicit Scope(Phase p)
    {
        if (samplePoint(p)) {
            phase_ = p;
            link_.parent = detail::timedTop();
            detail::timedTop() = &link_;
            start_ = detail::Clock::now();
        }
    }

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

    ~Scope()
    {
        if (phase_ == Phase::NumPhases)
            return;
        const auto end = detail::Clock::now();
        detail::closeTimedScope(phase_, start_, end, link_);
    }

  private:
    Phase phase_ = Phase::NumPhases; ///< NumPhases = not timing
    detail::Clock::time_point start_;
    detail::TimedLink link_;
};

/**
 * Scoped timer whose sampling decision was made elsewhere (see
 * samplePoint). Does not touch the entry count: report scaling uses
 * the phase's sampleShift, so pair it with a samplePoint of the
 * *same shift* (the tick hoists Phase::CoreTick's decision over the
 * stage phases, which share CoreTick's shift).
 */
class MaybeScope
{
  public:
    MaybeScope(bool timing, Phase p)
    {
        if (timing) {
            phase_ = p;
            link_.parent = detail::timedTop();
            detail::timedTop() = &link_;
            start_ = detail::Clock::now();
        }
    }

    MaybeScope(const MaybeScope &) = delete;
    MaybeScope &operator=(const MaybeScope &) = delete;

    ~MaybeScope()
    {
        if (phase_ == Phase::NumPhases)
            return;
        const auto end = detail::Clock::now();
        detail::closeTimedScope(phase_, start_, end, link_);
    }

  private:
    Phase phase_ = Phase::NumPhases;
    detail::Clock::time_point start_;
    detail::TimedLink link_;
};

/** Add @p value to a counter (no-op when profiling is off). */
inline void
add(Counter c, std::uint64_t value)
{
    if (!enabled())
        return;
    detail::threadState().counters[static_cast<unsigned>(c)] += value;
}

/** A merged view of every thread's accumulators. */
struct Snapshot
{
    std::uint64_t entries[kNumPhases] = {};
    std::uint64_t timed[kNumPhases] = {};
    std::uint64_t ns[kNumPhases] = {};
    std::uint64_t counters[kNumCounters] = {};

    /** Estimated total ns for a phase: measured ns scaled by the
     * sampling divisor. */
    std::uint64_t estNs(Phase p) const;
    /** Estimated entry count (exact when the phase self-samples,
     * scaled from timed calls for hoisted-decision phases). */
    std::uint64_t estCalls(Phase p) const;
};

/** Sum of the exited-thread accumulator and all live thread states.
 * Call with worker threads joined for exact results. */
Snapshot snapshot();

/** Zero every accumulator (merged + live threads). Tests only. */
void resetAll();

/**
 * Hierarchical text report. @p wall_seconds, when positive, is the
 * denominator for the %-of-wall column; otherwise the sum of
 * root-phase estimates is used.
 */
void writeReport(std::ostream &os, double wall_seconds = 0.0);

/** The same data as a JSON object (phases array + counters map). */
void writeJsonReport(std::ostream &os);
std::string jsonReport();

/**
 * Install the REPRO_PROFILE / REPRO_PROFILE_OUT exit hook: when
 * profiling is enabled, print the text report to stderr at process
 * exit and, if REPRO_PROFILE_OUT names a file, write the JSON report
 * there. Harnesses call this once from main(); calling it again is
 * harmless.
 */
void initFromEnv();

} // namespace prof
} // namespace nuca

#endif // NUCA_BASE_PROFILER_HH
