#include "base/stats.hh"

#include <algorithm>
#include <cstdio>

#include "serialize/serializer.hh"

namespace nuca {
namespace stats {

namespace {

/**
 * Doubles in dumps are formatted through snprintf rather than stream
 * manipulators: std::setprecision is sticky and would leak into the
 * caller's stream, and the default precision differs enough across
 * libstdc++ versions to make dump diffs unstable. %.6g matches the
 * precision the dumps always intended.
 */
std::string
formatDouble(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

} // namespace

Stat::Stat(Group &parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    parent.stats_.push_back(this);
}

void
Scalar::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << value_ << " # " << desc() << "\n";
}

void
Scalar::visit(Visitor &v, const std::string &prefix) const
{
    v.record(prefix + name(), static_cast<double>(value_));
}

std::uint64_t
Vector::total() const
{
    std::uint64_t t = 0;
    for (auto v : values_)
        t += v;
    return t;
}

void
Vector::dump(std::ostream &os, const std::string &prefix) const
{
    // A zero-length vector has nothing to report; emitting only the
    // ".total 0" line would be a dangling aggregate of no elements.
    if (values_.empty())
        return;
    for (std::size_t i = 0; i < values_.size(); ++i) {
        os << prefix << name() << "[" << i << "] " << values_[i]
           << " # " << desc() << "\n";
    }
    os << prefix << name() << ".total " << total() << " # " << desc()
       << "\n";
}

void
Vector::visit(Visitor &v, const std::string &prefix) const
{
    if (values_.empty())
        return;
    for (std::size_t i = 0; i < values_.size(); ++i) {
        v.record(prefix + name() + "[" + std::to_string(i) + "]",
                 static_cast<double>(values_[i]));
    }
    v.record(prefix + name() + ".total",
             static_cast<double>(total()));
}

void
Vector::reset()
{
    std::fill(values_.begin(), values_.end(), 0);
}

Distribution::Distribution(Group &parent, std::string name,
                           std::string desc, std::uint64_t min,
                           std::uint64_t max, std::uint64_t bucketSize)
    : Stat(parent, std::move(name), std::move(desc)),
      min_(min), max_(max), bucketSize_(bucketSize)
{
    panic_if(max_ <= min_, "Distribution with max <= min");
    panic_if(bucketSize_ == 0, "Distribution with zero bucket size");
    counts_.assign((max_ - min_ + bucketSize_ - 1) / bucketSize_, 0);

    // Prove the division-free bucket index exact for this domain:
    // the multiply-shift is monotone in the dividend, so checking
    // both edges of every bucket pins all interior values.
    const std::uint64_t recip =
        ((std::uint64_t{1} << 32) + bucketSize_ - 1) / bucketSize_;
    bool exact = max_ - min_ <= (std::uint64_t{1} << 31);
    for (std::size_t b = 0; exact && b < counts_.size(); ++b) {
        const std::uint64_t lo = b * bucketSize_;
        const std::uint64_t hi =
            std::min(lo + bucketSize_ - 1, max_ - min_ - 1);
        exact = ((lo * recip) >> 32) == b && ((hi * recip) >> 32) == b;
    }
    bucketRecip_ = exact ? recip : 0;
}

void
Distribution::sample(std::uint64_t v)
{
    if (count_ == 0) {
        minSeen_ = maxSeen_ = v;
    } else {
        minSeen_ = std::min(minSeen_, v);
        maxSeen_ = std::max(maxSeen_, v);
    }
    ++count_;
    sum_ += v;

    if (v < min_) {
        ++underflow_;
    } else if (v >= max_) {
        ++overflow_;
    } else {
        ++counts_[bucketIndex(v)];
    }
}

void
Distribution::sample(std::uint64_t v, std::uint64_t count)
{
    if (count == 0)
        return;
    if (count_ == 0) {
        minSeen_ = maxSeen_ = v;
    } else {
        minSeen_ = std::min(minSeen_, v);
        maxSeen_ = std::max(maxSeen_, v);
    }
    count_ += count;
    sum_ += static_cast<unsigned __int128>(v) * count;

    if (v < min_) {
        underflow_ += count;
    } else if (v >= max_) {
        overflow_ += count;
    } else {
        counts_[bucketIndex(v)] += count;
    }
}

double
Distribution::mean() const
{
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
}

std::uint64_t
Distribution::bucketCount(std::size_t i) const
{
    panic_if(i >= counts_.size(), "Distribution bucket out of range");
    return counts_[i];
}

void
Distribution::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << ".count " << count_ << " # " << desc()
       << "\n";
    os << prefix << name() << ".mean " << formatDouble(mean())
       << " # " << desc() << "\n";
    // min/max are only meaningful once something was sampled; with
    // count == 0 they would print as a spurious [0, 0] range.
    if (count_ > 0) {
        os << prefix << name() << ".min " << minSeen_ << " # "
           << desc() << "\n";
        os << prefix << name() << ".max " << maxSeen_ << " # "
           << desc() << "\n";
    }
    if (underflow_ > 0)
        os << prefix << name() << ".underflow " << underflow_ << "\n";
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        const auto lo = min_ + i * bucketSize_;
        os << prefix << name() << "[" << lo << ":"
           << (lo + bucketSize_) << ") " << counts_[i] << "\n";
    }
    if (overflow_ > 0)
        os << prefix << name() << ".overflow " << overflow_ << "\n";
}

void
Distribution::visit(Visitor &v, const std::string &prefix) const
{
    const std::string base = prefix + name();
    v.record(base + ".count", static_cast<double>(count_));
    v.record(base + ".mean", mean());
    if (count_ > 0) {
        v.record(base + ".min", static_cast<double>(minSeen_));
        v.record(base + ".max", static_cast<double>(maxSeen_));
    }
}

void
Distribution::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    underflow_ = overflow_ = count_ = 0;
    sum_ = 0;
    minSeen_ = maxSeen_ = 0;
}

void
Scalar::serializeValue(Serializer &s) const
{
    s.putU64(value_);
}

void
Scalar::deserializeValue(Deserializer &d)
{
    value_ = d.getU64();
}

void
Vector::serializeValue(Serializer &s) const
{
    s.putVecU64(values_);
}

void
Vector::deserializeValue(Deserializer &d)
{
    values_ = d.getVecU64(values_.size(), name().c_str());
}

void
Distribution::serializeValue(Serializer &s) const
{
    s.putVecU64(counts_);
    s.putU64(underflow_);
    s.putU64(overflow_);
    s.putU64(count_);
    // 128-bit sum as a lo/hi pair (checkpoint format v2).
    s.putU64(static_cast<std::uint64_t>(sum_));
    s.putU64(static_cast<std::uint64_t>(sum_ >> 64));
    s.putU64(minSeen_);
    s.putU64(maxSeen_);
}

void
Distribution::deserializeValue(Deserializer &d)
{
    counts_ = d.getVecU64(counts_.size(), name().c_str());
    underflow_ = d.getU64();
    overflow_ = d.getU64();
    count_ = d.getU64();
    const std::uint64_t sum_lo = d.getU64();
    const std::uint64_t sum_hi = d.getU64();
    sum_ = (static_cast<unsigned __int128>(sum_hi) << 64) | sum_lo;
    minSeen_ = d.getU64();
    maxSeen_ = d.getU64();
}

void
Formula::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << formatDouble(value()) << " # "
       << desc() << "\n";
}

void
Formula::visit(Visitor &v, const std::string &prefix) const
{
    v.record(prefix + name(), value());
}

Group::Group(Group &parent, std::string name) : name_(std::move(name))
{
    parent.children_.push_back(this);
}

void
Group::dump(std::ostream &os, const std::string &prefix) const
{
    const std::string my_prefix =
        prefix.empty() ? name_ + "." : prefix + name_ + ".";
    for (const auto *stat : stats_)
        stat->dump(os, my_prefix);
    for (const auto *child : children_)
        child->dump(os, my_prefix);
}

void
Group::visit(Visitor &v, const std::string &prefix) const
{
    const std::string my_prefix =
        prefix.empty() ? name_ + "." : prefix + name_ + ".";
    for (const auto *stat : stats_)
        stat->visit(v, my_prefix);
    for (const auto *child : children_)
        child->visit(v, my_prefix);
}

void
Group::reset()
{
    for (auto *stat : stats_)
        stat->reset();
    for (auto *child : children_)
        child->reset();
}

void
Group::serialize(Serializer &s) const
{
    s.putTag(fourcc("STAT"));
    s.putU64(stats_.size());
    for (const auto *stat : stats_)
        stat->serializeValue(s);
    s.putU64(children_.size());
    for (const auto *child : children_)
        child->serialize(s);
}

void
Group::deserialize(Deserializer &d)
{
    d.expectTag(fourcc("STAT"), name_.c_str());
    if (d.getU64() != stats_.size())
        throw CheckpointError("stat count mismatch in group " +
                              name_);
    for (auto *stat : stats_)
        stat->deserializeValue(d);
    if (d.getU64() != children_.size())
        throw CheckpointError("child group count mismatch in " +
                              name_);
    for (auto *child : children_)
        child->deserialize(d);
}

namespace {

/** True when @p path starts with "@p head." (a dotted descent). */
bool
descendsInto(const std::string &path, const std::string &head)
{
    return path.size() > head.size() + 1 &&
           path.compare(0, head.size(), head) == 0 &&
           path[head.size()] == '.';
}

} // namespace

const Stat *
Group::find(const std::string &path) const
{
    for (const auto *stat : stats_) {
        if (stat->name() == path)
            return stat;
    }
    // Group names may themselves contain dots ("core0.mem"), so the
    // descent matches whole child names against the path head rather
    // than splitting at the first dot.
    for (const auto *child : children_) {
        if (!descendsInto(path, child->name()))
            continue;
        if (const Stat *found =
                child->find(path.substr(child->name().size() + 1)))
            return found;
    }
    return nullptr;
}

const Group *
Group::findGroup(const std::string &path) const
{
    for (const auto *child : children_) {
        if (child->name() == path)
            return child;
        if (!descendsInto(path, child->name()))
            continue;
        if (const Group *found = child->findGroup(
                path.substr(child->name().size() + 1)))
            return found;
    }
    return nullptr;
}

void
Snapshot::take(const Group &root)
{
    entries_.clear();
    index_.clear();
    root.visit(*this);
}

void
Snapshot::record(const std::string &name, double value)
{
    index_.emplace(name, entries_.size());
    entries_.emplace_back(name, value);
}

std::optional<double>
Snapshot::value(const std::string &name) const
{
    const auto it = index_.find(name);
    if (it == index_.end())
        return std::nullopt;
    return entries_[it->second].second;
}

Snapshot
Snapshot::delta(const Snapshot &older) const
{
    Snapshot out;
    out.entries_.reserve(entries_.size());
    for (const auto &[name, v] : entries_)
        out.record(name, v - older.value(name).value_or(0.0));
    return out;
}

} // namespace stats
} // namespace nuca
