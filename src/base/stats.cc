#include "base/stats.hh"

#include <algorithm>
#include <iomanip>

namespace nuca {
namespace stats {

Stat::Stat(Group &parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    parent.stats_.push_back(this);
}

void
Scalar::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << value_ << " # " << desc() << "\n";
}

std::uint64_t
Vector::total() const
{
    std::uint64_t t = 0;
    for (auto v : values_)
        t += v;
    return t;
}

void
Vector::dump(std::ostream &os, const std::string &prefix) const
{
    for (std::size_t i = 0; i < values_.size(); ++i) {
        os << prefix << name() << "[" << i << "] " << values_[i]
           << " # " << desc() << "\n";
    }
    os << prefix << name() << ".total " << total() << " # " << desc()
       << "\n";
}

void
Vector::reset()
{
    std::fill(values_.begin(), values_.end(), 0);
}

Distribution::Distribution(Group &parent, std::string name,
                           std::string desc, std::uint64_t min,
                           std::uint64_t max, std::uint64_t bucketSize)
    : Stat(parent, std::move(name), std::move(desc)),
      min_(min), max_(max), bucketSize_(bucketSize)
{
    panic_if(max_ <= min_, "Distribution with max <= min");
    panic_if(bucketSize_ == 0, "Distribution with zero bucket size");
    counts_.assign((max_ - min_ + bucketSize_ - 1) / bucketSize_, 0);
}

void
Distribution::sample(std::uint64_t v)
{
    if (count_ == 0) {
        minSeen_ = maxSeen_ = v;
    } else {
        minSeen_ = std::min(minSeen_, v);
        maxSeen_ = std::max(maxSeen_, v);
    }
    ++count_;
    sum_ += static_cast<double>(v);

    if (v < min_) {
        ++underflow_;
    } else if (v >= max_) {
        ++overflow_;
    } else {
        ++counts_[(v - min_) / bucketSize_];
    }
}

double
Distribution::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

std::uint64_t
Distribution::bucketCount(std::size_t i) const
{
    panic_if(i >= counts_.size(), "Distribution bucket out of range");
    return counts_[i];
}

void
Distribution::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << ".count " << count_ << " # " << desc()
       << "\n";
    os << prefix << name() << ".mean " << mean() << " # " << desc()
       << "\n";
    if (underflow_ > 0)
        os << prefix << name() << ".underflow " << underflow_ << "\n";
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        const auto lo = min_ + i * bucketSize_;
        os << prefix << name() << "[" << lo << ":"
           << (lo + bucketSize_) << ") " << counts_[i] << "\n";
    }
    if (overflow_ > 0)
        os << prefix << name() << ".overflow " << overflow_ << "\n";
}

void
Distribution::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    underflow_ = overflow_ = count_ = 0;
    sum_ = 0.0;
    minSeen_ = maxSeen_ = 0;
}

void
Formula::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << std::setprecision(6) << value()
       << " # " << desc() << "\n";
}

Group::Group(Group &parent, std::string name) : name_(std::move(name))
{
    parent.children_.push_back(this);
}

void
Group::dump(std::ostream &os, const std::string &prefix) const
{
    const std::string my_prefix =
        prefix.empty() ? name_ + "." : prefix + name_ + ".";
    for (const auto *stat : stats_)
        stat->dump(os, my_prefix);
    for (const auto *child : children_)
        child->dump(os, my_prefix);
}

void
Group::reset()
{
    for (auto *stat : stats_)
        stat->reset();
    for (auto *child : children_)
        child->reset();
}

const Stat *
Group::find(const std::string &name) const
{
    for (const auto *stat : stats_) {
        if (stat->name() == name)
            return stat;
    }
    return nullptr;
}

} // namespace stats
} // namespace nuca
