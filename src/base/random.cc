#include "base/random.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "serialize/serializer.hh"

namespace nuca {

namespace {

/** splitmix64 step; standard seeding companion for xoshiro. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
    // xoshiro must not start from the all-zero state; splitmix64
    // cannot produce four zero outputs from any seed, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 0x9e3779b97f4a7c15ULL;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

void
Rng::checkpoint(Serializer &s) const
{
    for (const auto word : s_)
        s.putU64(word);
}

void
Rng::restore(Deserializer &d)
{
    for (auto &word : s_)
        word = d.getU64();
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        throw CheckpointError("Rng restore: all-zero state");
}

std::uint64_t
Rng::geometric(double p, std::uint64_t cap)
{
    panic_if(p <= 0.0 || p > 1.0, "geometric probability out of (0,1]");
    if (p >= 1.0)
        return 0;
    // Inversion: floor(log(U) / log(1-p)). Callers draw with the
    // same per-profile p millions of times, so the denominator is
    // memoized (same std::log1p call, same value — draws are
    // bit-identical with or without the cache).
    if (p != cachedP_) {
        cachedP_ = p;
        cachedLogDenom_ = std::log1p(-p);
    }
    const double u = std::max(real(), 0x1.0p-60);
    const double draws = std::floor(std::log(u) / cachedLogDenom_);
    if (draws >= static_cast<double>(cap))
        return cap;
    return static_cast<std::uint64_t>(draws);
}

Rng
Rng::split()
{
    // A fresh generator seeded from this stream's output; streams are
    // decorrelated through the splitmix64 scrambler in the ctor.
    return Rng(next());
}

AliasTable::AliasTable(const std::vector<double> &weights)
{
    panic_if(weights.empty(), "AliasTable built from no weights");
    double total = 0.0;
    for (double w : weights) {
        panic_if(w < 0.0, "AliasTable weight is negative");
        total += w;
    }
    panic_if(total <= 0.0, "AliasTable weights sum to zero");

    const auto n = weights.size();
    prob_.assign(n, 0.0);
    alias_.assign(n, 0);
    normWeights_.resize(n);

    // Scaled probabilities: mean 1.0.
    std::vector<double> scaled(n);
    for (std::size_t i = 0; i < n; ++i) {
        normWeights_[i] = weights[i] / total;
        scaled[i] = normWeights_[i] * static_cast<double>(n);
    }

    std::vector<unsigned> small, large;
    for (std::size_t i = 0; i < n; ++i) {
        (scaled[i] < 1.0 ? small : large)
            .push_back(static_cast<unsigned>(i));
    }

    while (!small.empty() && !large.empty()) {
        const unsigned s = small.back();
        small.pop_back();
        const unsigned l = large.back();
        large.pop_back();
        prob_[s] = scaled[s];
        alias_[s] = l;
        scaled[l] = (scaled[l] + scaled[s]) - 1.0;
        (scaled[l] < 1.0 ? small : large).push_back(l);
    }
    // Residual buckets are full-probability (floating-point leftovers).
    for (unsigned i : large)
        prob_[i] = 1.0;
    for (unsigned i : small)
        prob_[i] = 1.0;
}

double
AliasTable::probabilityOf(unsigned i) const
{
    panic_if(i >= normWeights_.size(), "AliasTable index out of range");
    return normWeights_[i];
}

ZipfSampler::ZipfSampler(unsigned n, double s)
{
    panic_if(n == 0, "ZipfSampler over zero ranks");
    panic_if(s < 0.0, "ZipfSampler exponent is negative");
    cdf_.resize(n);
    double acc = 0.0;
    for (unsigned k = 0; k < n; ++k) {
        acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
        cdf_[k] = acc;
    }
    for (auto &v : cdf_)
        v /= acc;
}

unsigned
ZipfSampler::sample(Rng &rng) const
{
    panic_if(cdf_.empty(), "sampling from an empty ZipfSampler");
    const double u = rng.real();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        return static_cast<unsigned>(cdf_.size() - 1);
    return static_cast<unsigned>(it - cdf_.begin());
}

} // namespace nuca
