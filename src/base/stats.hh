/**
 * @file
 * A small statistics package in the spirit of gem5's: named counters
 * that register themselves with a group, plus derived formulas, with a
 * uniform text dump. Components expose their behaviour exclusively
 * through these stats, which is what the tests and the figure
 * harnesses read.
 */

#ifndef NUCA_BASE_STATS_HH
#define NUCA_BASE_STATS_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/logging.hh"

namespace nuca {

class Serializer;
class Deserializer;

namespace stats {

class Group;

/**
 * Receiver of structured stat records: every stat yields one or more
 * {dotted-name, value} pairs — the same names the text dump prints,
 * but as machine-readable values (vectors yield "name[i]" plus
 * "name.total", distributions their ".count"/".mean"/".min"/".max").
 */
class Visitor
{
  public:
    virtual ~Visitor() = default;

    /** One record. @p name is the full dotted path. */
    virtual void record(const std::string &name, double value) = 0;
};

/** Base class for all statistics: a name, a description, a dump. */
class Stat
{
  public:
    Stat(Group &parent, std::string name, std::string desc);
    virtual ~Stat() = default;

    Stat(const Stat &) = delete;
    Stat &operator=(const Stat &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Print "name value # desc" line(s). */
    virtual void dump(std::ostream &os, const std::string &prefix)
        const = 0;

    /** Yield this stat's {dotted-name, value} records. */
    virtual void visit(Visitor &v, const std::string &prefix)
        const = 0;

    /** Reset the value(s) to zero. */
    virtual void reset() = 0;

    /**
     * Append this stat's value(s) to a checkpoint. Derived values
     * (Formula) carry no state and keep the empty default.
     */
    virtual void serializeValue(Serializer &s) const { (void)s; }

    /** Restore the value(s) written by serializeValue. */
    virtual void deserializeValue(Deserializer &d) { (void)d; }

  private:
    std::string name_;
    std::string desc_;
};

/** A simple monotonically growing (or assignable) counter. */
class Scalar : public Stat
{
  public:
    Scalar(Group &parent, std::string name, std::string desc)
        : Stat(parent, std::move(name), std::move(desc))
    {}

    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(std::uint64_t v) { value_ += v; return *this; }
    Scalar &operator=(std::uint64_t v) { value_ = v; return *this; }

    std::uint64_t value() const { return value_; }

    void dump(std::ostream &os, const std::string &prefix)
        const override;
    void visit(Visitor &v, const std::string &prefix) const override;
    void reset() override { value_ = 0; }
    void serializeValue(Serializer &s) const override;
    void deserializeValue(Deserializer &d) override;

  private:
    std::uint64_t value_ = 0;
};

/** A fixed-length vector of counters (e.g. one per core). */
class Vector : public Stat
{
  public:
    Vector(Group &parent, std::string name, std::string desc,
           std::size_t size)
        : Stat(parent, std::move(name), std::move(desc)),
          values_(size, 0)
    {}

    std::uint64_t &
    operator[](std::size_t i)
    {
        panic_if(i >= values_.size(), "stat vector index out of range");
        return values_[i];
    }

    std::uint64_t
    value(std::size_t i) const
    {
        panic_if(i >= values_.size(), "stat vector index out of range");
        return values_[i];
    }

    std::uint64_t total() const;
    std::size_t size() const { return values_.size(); }

    void dump(std::ostream &os, const std::string &prefix)
        const override;
    void visit(Visitor &v, const std::string &prefix) const override;
    void reset() override;
    void serializeValue(Serializer &s) const override;
    void deserializeValue(Deserializer &d) override;

  private:
    std::vector<std::uint64_t> values_;
};

/**
 * A bucketed distribution over [min, max) with fixed-width buckets
 * plus underflow/overflow, tracking count/sum/min/max seen.
 */
class Distribution : public Stat
{
  public:
    Distribution(Group &parent, std::string name, std::string desc,
                 std::uint64_t min, std::uint64_t max,
                 std::uint64_t bucketSize);

    void sample(std::uint64_t v);

    /**
     * Record @p v as if sample(v) had been called @p count times.
     * Bit-identical to the repeated unit calls: bucket counts and
     * min/max trivially, and the running sum exactly, because the
     * accumulator is a 128-bit integer — v * count never exceeds
     * 2^128 and integer addition is associative, so no weight is
     * large enough to make the folded and the unit-call sums
     * diverge. (The old double accumulator silently lost the
     * guarantee once a sum crossed 2^53, which multi-billion-cycle
     * fast-forward folds can reach.) This is what lets the
     * fast-forwarding run loop fold skipped stalled cycles into
     * per-cycle distributions without perturbing a single statistic.
     */
    void sample(std::uint64_t v, std::uint64_t count);

    std::uint64_t count() const { return count_; }
    double mean() const;
    std::uint64_t minSeen() const { return minSeen_; }
    std::uint64_t maxSeen() const { return maxSeen_; }
    std::uint64_t bucketCount(std::size_t i) const;
    std::size_t buckets() const { return counts_.size(); }

    void dump(std::ostream &os, const std::string &prefix)
        const override;
    void visit(Visitor &v, const std::string &prefix) const override;
    void reset() override;
    void serializeValue(Serializer &s) const override;
    void deserializeValue(Deserializer &d) override;

  private:
    /** Bucket index of an in-range value, division-free when the
     * constructor could verify the reciprocal (sample runs once or
     * twice per simulated cycle; an integer divide there is the
     * single most expensive instruction in the loop). */
    std::size_t
    bucketIndex(std::uint64_t v) const
    {
        const std::uint64_t d = v - min_;
        if (bucketRecip_ != 0)
            return static_cast<std::size_t>((d * bucketRecip_) >> 32);
        return static_cast<std::size_t>(d / bucketSize_);
    }

    std::uint64_t min_;
    std::uint64_t max_;
    std::uint64_t bucketSize_;
    /**
     * ceil(2^32 / bucketSize_), or 0 to fall back to plain division.
     * The constructor proves the multiply-shift exact over the whole
     * [min_, max_) domain (checks every bucket boundary; the mapping
     * is monotone, so the boundaries pin all interior values) and
     * zeroes it when the proof fails.
     */
    std::uint64_t bucketRecip_ = 0;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    /**
     * Exact integer sum of all sampled values (weighted). 128 bits
     * so weighted samples at multi-billion-cycle counts stay exact:
     * u64 values times u64 counts fit, where a double would round
     * past 2^53 and an u64 could overflow. Serialized as a lo/hi
     * u64 pair (checkpoint format v2).
     */
    unsigned __int128 sum_ = 0;
    std::uint64_t minSeen_ = 0;
    std::uint64_t maxSeen_ = 0;
};

/** A derived value computed on demand from other stats. */
class Formula : public Stat
{
  public:
    Formula(Group &parent, std::string name, std::string desc,
            std::function<double()> fn)
        : Stat(parent, std::move(name), std::move(desc)),
          fn_(std::move(fn))
    {}

    double value() const { return fn_(); }

    void dump(std::ostream &os, const std::string &prefix)
        const override;
    void visit(Visitor &v, const std::string &prefix) const override;
    void reset() override {}

  private:
    std::function<double()> fn_;
};

/**
 * A named collection of stats and child groups. Components own a
 * Group (or register into their parent's) and create their stats as
 * members referencing it.
 */
class Group
{
  public:
    explicit Group(std::string name) : name_(std::move(name)) {}

    /** Create a sub-group nested under @p parent. */
    Group(Group &parent, std::string name);

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    const std::string &name() const { return name_; }

    /** Dump all stats of this group and its children. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /** Visit all stats of this group and its children, yielding the
     * same dotted names the dump prints. */
    void visit(Visitor &v, const std::string &prefix = "") const;

    /** Reset all stats of this group and its children. */
    void reset();

    /**
     * Find a stat by name relative to this group. A plain name
     * searches the directly-owned stats (the original behaviour); a
     * dotted path ("sharing_engine.repartitions") descends through
     * child groups, including groups whose own names contain dots
     * ("core0.mem.l1d.misses"). @return nullptr if absent.
     */
    const Stat *find(const std::string &path) const;

    /** Find a child group by (possibly dotted) relative path. */
    const Group *findGroup(const std::string &path) const;

    /**
     * Checkpoint every stat of this group and its children in
     * registration order. Restoring requires an identically shaped
     * group tree (same construction sequence), which the checkpoint
     * configuration hash guarantees; a shape mismatch throws
     * CheckpointError.
     */
    void serialize(Serializer &s) const;
    void deserialize(Deserializer &d);

  private:
    friend class Stat;

    std::string name_;
    std::vector<Stat *> stats_;
    std::vector<Group *> children_;
};

/**
 * A point-in-time capture of every stat under a group as flat
 * {dotted-name, value} entries, with O(1) lookup by name and
 * snapshot-to-snapshot deltas — the substrate for per-interval rate
 * telemetry (take one snapshot per epoch and diff, instead of
 * re-parsing text dumps).
 */
class Snapshot : public Visitor
{
  public:
    Snapshot() = default;

    /** Capture all stats under @p root (names as in root.dump()). */
    explicit Snapshot(const Group &root) { take(root); }

    /** Replace the contents with a fresh capture of @p root. */
    void take(const Group &root);

    void record(const std::string &name, double value) override;

    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    /** Entries in visit (dump) order. */
    const std::vector<std::pair<std::string, double>> &
    entries() const { return entries_; }

    /** Value of a dotted name; nullopt when absent. */
    std::optional<double> value(const std::string &name) const;

    /**
     * Per-name difference `this - older`: one entry per entry of
     * *this, with names absent from @p older treated as zero (stats
     * count up from zero, so a stat created between snapshots has a
     * well-defined delta).
     */
    Snapshot delta(const Snapshot &older) const;

  private:
    std::vector<std::pair<std::string, double>> entries_;
    std::unordered_map<std::string, std::size_t> index_;
};

} // namespace stats
} // namespace nuca

#endif // NUCA_BASE_STATS_HH
