/**
 * @file
 * gem5-style status/error reporting.
 *
 * panic()  - something happened that should never happen regardless of
 *            user input, i.e. a simulator bug. Aborts (core dump).
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, invalid argument). Exits with code 1.
 * warn()   - functionality may not behave exactly as intended.
 * inform() - normal status messages.
 */

#ifndef NUCA_BASE_LOGGING_HH
#define NUCA_BASE_LOGGING_HH

#include <sstream>
#include <string>

namespace nuca {

namespace logging_detail {

/** Concatenate any streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace logging_detail

/** Abort with a message: an internal invariant was violated. */
#define panic(...)                                                        \
    ::nuca::logging_detail::panicImpl(                                    \
        __FILE__, __LINE__, ::nuca::logging_detail::concat(__VA_ARGS__))

/** Exit(1) with a message: the user asked for something impossible. */
#define fatal(...)                                                        \
    ::nuca::logging_detail::fatalImpl(                                    \
        __FILE__, __LINE__, ::nuca::logging_detail::concat(__VA_ARGS__))

/** Conditional panic, for invariant checks that always run. */
#define panic_if(cond, ...)                                               \
    do {                                                                  \
        if (cond) {                                                       \
            panic("condition '" #cond "' failed: ", __VA_ARGS__);         \
        }                                                                 \
    } while (0)

/** Conditional fatal for validating user-provided configuration. */
#define fatal_if(cond, ...)                                               \
    do {                                                                  \
        if (cond) {                                                       \
            fatal(__VA_ARGS__);                                           \
        }                                                                 \
    } while (0)

/**
 * Debug-only invariant check for per-access hot paths (cache way
 * lookups, completion-ring indexing) where an always-on panic_if
 * costs a measurable fraction of the simulation loop. Compiled to
 * nothing in Release/RelWithDebInfo (NDEBUG) builds; active in Debug
 * builds and in any build that defines NUCA_DEBUG_CHECKS — the CMake
 * sanitizer configurations (REPRO_SANITIZE=thread|address) define it
 * so CI's TSan/ASan jobs keep every check. Reserve panic_if for
 * per-epoch / per-event checks; see docs/ROBUSTNESS.md.
 */
#if defined(NUCA_DEBUG_CHECKS) || !defined(NDEBUG)
#define debug_panic_if(cond, ...)                                         \
    do {                                                                  \
        if (cond) {                                                       \
            panic("condition '" #cond "' failed: ", __VA_ARGS__);         \
        }                                                                 \
    } while (0)
#else
#define debug_panic_if(cond, ...)                                         \
    do {                                                                  \
    } while (0)
#endif

/** Non-fatal warning to stderr. */
#define warn(...)                                                         \
    ::nuca::logging_detail::warnImpl(                                     \
        ::nuca::logging_detail::concat(__VA_ARGS__))

/** Informational message to stdout. */
#define inform(...)                                                       \
    ::nuca::logging_detail::informImpl(                                   \
        ::nuca::logging_detail::concat(__VA_ARGS__))

} // namespace nuca

#endif // NUCA_BASE_LOGGING_HH
