/**
 * @file
 * Fundamental scalar types and architectural constants shared by every
 * module in the simulator.
 */

#ifndef NUCA_BASE_TYPES_HH
#define NUCA_BASE_TYPES_HH

#include <cstdint>

namespace nuca {

/** A (virtual or physical) byte address. */
using Addr = std::uint64_t;

/** A point in simulated time, measured in processor clock cycles. */
using Cycle = std::uint64_t;

/** A count of things (instructions, misses, ...). */
using Counter = std::uint64_t;

/** Core identifier within a chip multiprocessor. */
using CoreId = int;

/** Marker for "no core" / "unowned". */
constexpr CoreId invalidCore = -1;

/** Cache block (line) size used throughout the paper's configuration. */
constexpr unsigned blockBytes = 64;

/** log2(blockBytes); number of block-offset bits in an address. */
constexpr unsigned blockShift = 6;

/** Virtual-memory page size used by the TLB model. */
constexpr unsigned pageBytes = 4096;

/** log2(pageBytes). */
constexpr unsigned pageShift = 12;

/** Strip the block offset, yielding a block-aligned address. */
constexpr Addr
blockAlign(Addr addr)
{
    return addr & ~static_cast<Addr>(blockBytes - 1);
}

/** Block number of an address (address divided by the block size). */
constexpr Addr
blockNumber(Addr addr)
{
    return addr >> blockShift;
}

/** Page number of an address. */
constexpr Addr
pageNumber(Addr addr)
{
    return addr >> pageShift;
}

} // namespace nuca

#endif // NUCA_BASE_TYPES_HH
