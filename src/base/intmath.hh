/**
 * @file
 * Small integer-math helpers (powers of two, integer log2) used when
 * decomposing addresses into cache index/tag fields.
 */

#ifndef NUCA_BASE_INTMATH_HH
#define NUCA_BASE_INTMATH_HH

#include <cstdint>

namespace nuca {

/** @return true iff @p n is a (positive) power of two. */
constexpr bool
isPowerOf2(std::uint64_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/**
 * Integer floor(log2(n)).
 *
 * @pre n > 0
 */
constexpr unsigned
floorLog2(std::uint64_t n)
{
    unsigned l = 0;
    while (n > 1) {
        n >>= 1;
        ++l;
    }
    return l;
}

/** Integer ceil(log2(n)); ceilLog2(1) == 0. */
constexpr unsigned
ceilLog2(std::uint64_t n)
{
    return isPowerOf2(n) ? floorLog2(n) : floorLog2(n) + 1;
}

/** Integer division rounding up. @pre b > 0 */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace nuca

#endif // NUCA_BASE_INTMATH_HH
