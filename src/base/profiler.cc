#include "base/profiler.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <mutex>
#include <ostream>
#include <sstream>
#include <vector>

#include "base/logging.hh"

namespace nuca {
namespace prof {

namespace {

struct PhaseInfo
{
    const char *name;
    Phase parent;
    unsigned sampleShift;
};

/**
 * Static phase table. Sample shifts are sized from BENCH_perf.json's
 * compute_bound numbers (~475 ns per core-tick): per-tick phases at
 * shift 6 cost ~5 clock reads per 64 ticks, per-miss phases at
 * shift 2 only run off the L1-hit fast path, and everything else is
 * rare enough to time exactly.
 */
constexpr PhaseInfo kPhases[kNumPhases] = {
    // Phase::Run
    {"run", Phase::NumPhases, 0},
    // Phase::CoreTick
    {"core_tick", Phase::Run, 6},
    // Phase::CommitStage
    {"commit_stage", Phase::CoreTick, 6},
    // Phase::IssueStage
    {"issue_stage", Phase::CoreTick, 6},
    // Phase::DispatchStage
    {"dispatch_stage", Phase::CoreTick, 6},
    // Phase::FetchStage
    {"fetch_stage", Phase::CoreTick, 6},
    // Phase::CacheMissWalk
    {"cache_miss_walk", Phase::CoreTick, 2},
    // Phase::L3Access
    {"l3_access", Phase::CacheMissWalk, 2},
    // Phase::FastForwardHorizon
    {"ff_horizon", Phase::Run, 6},
    // Phase::CoreAdvance
    {"core_advance", Phase::Run, 6},
    // Phase::WakeHeap
    {"wake_heap", Phase::Run, 6},
    // Phase::UncoreDrain
    {"uncore_drain", Phase::Run, 0},
    // Phase::TelemetrySample
    {"telemetry_sample", Phase::Run, 0},
    // Phase::HeatmapSample
    {"heatmap_sample", Phase::TelemetrySample, 0},
    // Phase::TelemetryFlush
    {"telemetry_flush", Phase::NumPhases, 0},
    // Phase::CheckpointSave
    {"checkpoint_save", Phase::NumPhases, 0},
    // Phase::CheckpointRestore
    {"checkpoint_restore", Phase::NumPhases, 0},
    // Phase::Job
    {"job", Phase::NumPhases, 0},
};

constexpr const char *kCounterNames[kNumCounters] = {
    "trace_records",       "trace_flushes",    "heatmap_records",
    "fastforward_jumps",   "fastforward_cycles",
    "decoupled_batched_cycles", "wake_heap_pops",
    "horizon_recomputes",
    "checkpoint_bytes_out", "checkpoint_bytes_in", "jobs_finished",
    "job_retries",          "job_crashes",
};

/** Exited-thread totals plus the registry of live thread states. */
struct Registry
{
    std::mutex mutex;
    detail::ThreadState merged;
    std::vector<detail::ThreadState *> live;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

void
addInto(detail::ThreadState &dst, const detail::ThreadState &src)
{
    for (unsigned i = 0; i < kNumPhases; ++i) {
        dst.entries[i] += src.entries[i];
        dst.timed[i] += src.timed[i];
        dst.ns[i] += src.ns[i];
    }
    for (unsigned i = 0; i < kNumCounters; ++i)
        dst.counters[i] += src.counters[i];
}

/** Registers the thread's state on construction and folds it into
 * the merged totals when the thread exits. */
struct ThreadHolder
{
    detail::ThreadState state;

    ThreadHolder()
    {
        auto &r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        r.live.push_back(&state);
    }

    ~ThreadHolder()
    {
        auto &r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        addInto(r.merged, state);
        for (auto it = r.live.begin(); it != r.live.end(); ++it) {
            if (*it == &state) {
                r.live.erase(it);
                break;
            }
        }
    }
};

std::string
humanTime(double seconds)
{
    char buf[32];
    if (seconds >= 1.0)
        std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
    else if (seconds >= 1e-3)
        std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
    else if (seconds >= 1e-6)
        std::snprintf(buf, sizeof(buf), "%.2f us", seconds * 1e6);
    else
        std::snprintf(buf, sizeof(buf), "%.0f ns", seconds * 1e9);
    return buf;
}

std::string
humanCount(std::uint64_t n)
{
    char buf[32];
    if (n >= 10'000'000ull)
        std::snprintf(buf, sizeof(buf), "%.1f M", n / 1e6);
    else if (n >= 10'000ull)
        std::snprintf(buf, sizeof(buf), "%.1f k", n / 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(n));
    return buf;
}

void
reportPhase(std::ostream &os, const Snapshot &snap, Phase p,
            unsigned depth, double wall_seconds)
{
    const auto i = static_cast<unsigned>(p);
    const std::uint64_t calls = snap.estCalls(p);
    if (calls == 0 && snap.timed[i] == 0)
        return;

    const double est = snap.estNs(p) / 1e9;
    std::ostringstream name;
    for (unsigned d = 0; d < depth; ++d)
        name << "  ";
    name << phaseName(p);
    if (phaseSampleShift(p) > 0)
        name << " ~";

    char line[160];
    std::snprintf(line, sizeof(line),
                  "  %-28s %10s %6.1f%% %10s %10s\n",
                  name.str().c_str(), humanTime(est).c_str(),
                  wall_seconds > 0 ? 100.0 * est / wall_seconds : 0.0,
                  humanCount(calls).c_str(),
                  calls ? humanTime(est / calls).c_str() : "-");
    os << line;

    for (unsigned c = 0; c < kNumPhases; ++c) {
        const auto child = static_cast<Phase>(c);
        if (phaseParent(child) == p)
            reportPhase(os, snap, child, depth + 1, wall_seconds);
    }
}

} // namespace

const char *
phaseName(Phase p)
{
    return kPhases[static_cast<unsigned>(p)].name;
}

Phase
phaseParent(Phase p)
{
    return kPhases[static_cast<unsigned>(p)].parent;
}

unsigned
phaseSampleShift(Phase p)
{
    return kPhases[static_cast<unsigned>(p)].sampleShift;
}

bool
enabledFromEnv()
{
    const char *e = std::getenv("REPRO_PROFILE");
    return e && *e && std::strcmp(e, "0") != 0;
}

void
setEnabled(bool on)
{
    enabledFlag().store(on, std::memory_order_relaxed);
}

namespace detail {

ThreadState &
threadState()
{
    thread_local ThreadHolder holder;
    return holder.state;
}

std::uint64_t
timerPairNs()
{
    // The overhead a nested timed scope imposes on an enclosing
    // timer is dominated by its two clock reads; measure that pair
    // cost once, averaged over enough iterations to swamp the
    // enclosing reads and loop control. The per-iteration deltas
    // feed a sink so the reads cannot be optimized away.
    static const std::uint64_t cost = [] {
        constexpr unsigned kIters = 8192;
        std::uint64_t sink = 0;
        const auto t0 = Clock::now();
        for (unsigned i = 0; i < kIters; ++i) {
            const auto a = Clock::now();
            const auto b = Clock::now();
            sink += static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    b - a)
                    .count());
        }
        const auto t1 = Clock::now();
        static volatile std::uint64_t escape;
        escape = sink;
        (void)escape;
        return static_cast<std::uint64_t>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       t1 - t0)
                       .count()) /
               kIters;
    }();
    return cost;
}

} // namespace detail

std::uint64_t
Snapshot::estNs(Phase p) const
{
    return ns[static_cast<unsigned>(p)] << phaseSampleShift(p);
}

std::uint64_t
Snapshot::estCalls(Phase p) const
{
    const auto i = static_cast<unsigned>(p);
    if (entries[i])
        return entries[i];
    return timed[i] << phaseSampleShift(p);
}

Snapshot
snapshot()
{
    auto &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    detail::ThreadState sum = r.merged;
    for (const auto *ts : r.live)
        addInto(sum, *ts);

    Snapshot out;
    for (unsigned i = 0; i < kNumPhases; ++i) {
        out.entries[i] = sum.entries[i];
        out.timed[i] = sum.timed[i];
        out.ns[i] = sum.ns[i];
    }
    for (unsigned i = 0; i < kNumCounters; ++i)
        out.counters[i] = sum.counters[i];
    return out;
}

void
resetAll()
{
    auto &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.merged = detail::ThreadState{};
    for (auto *ts : r.live)
        *ts = detail::ThreadState{};
}

void
writeReport(std::ostream &os, double wall_seconds)
{
    const Snapshot snap = snapshot();

    double rootSum = 0.0;
    for (unsigned i = 0; i < kNumPhases; ++i) {
        const auto p = static_cast<Phase>(i);
        if (phaseParent(p) == Phase::NumPhases)
            rootSum += snap.estNs(p) / 1e9;
    }
    const double wall = wall_seconds > 0 ? wall_seconds : rootSum;

    os << "host self-profile";
    if (wall > 0)
        os << " (attributed against " << humanTime(wall) << " wall)";
    os << "\n";
    char header[160];
    std::snprintf(header, sizeof(header),
                  "  %-28s %10s %7s %10s %10s\n", "phase", "est.time",
                  "%wall", "calls", "avg");
    os << header;
    for (unsigned i = 0; i < kNumPhases; ++i) {
        const auto p = static_cast<Phase>(i);
        if (phaseParent(p) == Phase::NumPhases)
            reportPhase(os, snap, p, 0, wall);
    }

    bool anyCounter = false;
    for (unsigned i = 0; i < kNumCounters; ++i)
        anyCounter |= snap.counters[i] != 0;
    if (anyCounter) {
        os << "  counters\n";
        for (unsigned i = 0; i < kNumCounters; ++i) {
            if (!snap.counters[i])
                continue;
            char line[96];
            std::snprintf(line, sizeof(line), "    %-26s %12llu\n",
                          kCounterNames[i],
                          static_cast<unsigned long long>(
                              snap.counters[i]));
            os << line;
        }
    }
    os << "  ~ = sampled phase: times scaled from 1/2^shift "
          "timed calls\n";
}

void
writeJsonReport(std::ostream &os)
{
    // Hand-written JSON: every key is a static identifier and every
    // value an integer, so no escaping is needed (nuca_base sits
    // below the JSON layer in nuca_sim).
    const Snapshot snap = snapshot();
    os << "{\"version\": 1, \"enabled\": "
       << (enabled() ? "true" : "false") << ", \"phases\": [";
    bool first = true;
    for (unsigned i = 0; i < kNumPhases; ++i) {
        const auto p = static_cast<Phase>(i);
        if (snap.estCalls(p) == 0)
            continue;
        if (!first)
            os << ", ";
        first = false;
        os << "{\"name\": \"" << phaseName(p) << "\", \"parent\": ";
        if (phaseParent(p) == Phase::NumPhases)
            os << "null";
        else
            os << "\"" << phaseName(phaseParent(p)) << "\"";
        os << ", \"est_ns\": " << snap.estNs(p)
           << ", \"calls_est\": " << snap.estCalls(p)
           << ", \"timed_calls\": " << snap.timed[i]
           << ", \"sample_shift\": " << phaseSampleShift(p) << "}";
    }
    os << "], \"counters\": {";
    first = true;
    for (unsigned i = 0; i < kNumCounters; ++i) {
        if (!first)
            os << ", ";
        first = false;
        os << "\"" << kCounterNames[i] << "\": " << snap.counters[i];
    }
    os << "}}";
}

std::string
jsonReport()
{
    std::ostringstream os;
    writeJsonReport(os);
    return os.str();
}

namespace {

void
reportAtExit()
{
    if (!enabled())
        return;
    std::ostringstream os;
    writeReport(os);
    std::fputs(os.str().c_str(), stderr);
    if (const char *out = std::getenv("REPRO_PROFILE_OUT");
        out && *out) {
        std::ofstream f(out);
        if (f) {
            writeJsonReport(f);
            f << "\n";
        }
        if (!f)
            warn("profiler: could not write REPRO_PROFILE_OUT=", out);
    }
}

} // namespace

void
initFromEnv()
{
    static bool done = false;
    if (done)
        return;
    done = true;
    if (enabledFromEnv()) {
        setEnabled(true);
        std::atexit(reportAtExit);
    }
}

} // namespace prof
} // namespace nuca
