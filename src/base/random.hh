/**
 * @file
 * Deterministic pseudo-random number generation and the discrete
 * distributions the workload generators rely on.
 *
 * Every stochastic decision in the simulator (workload draws, spill
 * targets, experiment mixes) flows from an explicitly seeded Rng so
 * identical seeds reproduce identical simulations bit-for-bit across
 * platforms. std::mt19937 and <random> distributions are avoided
 * because their outputs are not specified identically across standard
 * library implementations.
 */

#ifndef NUCA_BASE_RANDOM_HH
#define NUCA_BASE_RANDOM_HH

#include <cstdint>
#include <vector>

#include "base/logging.hh"

namespace nuca {

class Serializer;
class Deserializer;

/**
 * xoshiro256** generator with a splitmix64-based seeding routine.
 * Fast, high quality, and fully portable.
 */
class Rng
{
  public:
    /** Seed the generator; the same seed yields the same stream. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @pre bound > 0 */
    std::uint64_t
    below(std::uint64_t bound)
    {
        panic_if(bound == 0, "Rng::below(0)");
        // Multiply-shift rejection-free mapping (Lemire); bias is
        // negligible (< 2^-64 * bound) for simulation purposes.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        panic_if(lo > hi, "Rng::between with lo > hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw: true with probability @p p. */
    bool
    chance(double p)
    {
        return real() < p;
    }

    /**
     * Geometric draw: number of failures before the first success
     * with per-trial success probability @p p in (0, 1]. Mean is
     * (1-p)/p. Capped at @p cap to bound pathological tails.
     */
    std::uint64_t geometric(double p, std::uint64_t cap = 1u << 20);

    /** Derive an independent child stream (for per-core generators). */
    Rng split();

    /** Checkpoint the generator state (four 64-bit words). */
    void checkpoint(Serializer &s) const;
    /** Restore a state written by checkpoint(). */
    void restore(Deserializer &d);

  private:
    std::uint64_t s_[4];
    /** geometric() denominator memo — derived, not checkpointed. */
    double cachedP_ = -1.0;
    double cachedLogDenom_ = 0.0;
};

/**
 * Walker alias table: O(1) sampling from an arbitrary fixed discrete
 * distribution. Used on every workload memory reference to pick which
 * reuse region an access targets, so it has to be fast.
 */
class AliasTable
{
  public:
    AliasTable() = default;

    /**
     * Build the table from (unnormalized, non-negative) weights.
     * @pre at least one weight is positive.
     */
    explicit AliasTable(const std::vector<double> &weights);

    /** Draw an index with probability proportional to its weight. */
    unsigned
    sample(Rng &rng) const
    {
        panic_if(prob_.empty(), "sampling from an empty AliasTable");
        const auto i =
            static_cast<unsigned>(rng.below(prob_.size()));
        return rng.real() < prob_[i] ? i : alias_[i];
    }

    /** Number of outcomes. */
    std::size_t size() const { return prob_.size(); }

    /** Normalized probability of outcome @p i (for tests/inspection). */
    double probabilityOf(unsigned i) const;

  private:
    std::vector<double> prob_;
    std::vector<unsigned> alias_;
    std::vector<double> normWeights_;
};

/**
 * Zipf(s) sampler over ranks {0, ..., n-1}: P(k) proportional to
 * 1/(k+1)^s. Implemented with a precomputed CDF + binary search; the
 * workloads use modest n so the table stays small.
 */
class ZipfSampler
{
  public:
    ZipfSampler() = default;

    /** @pre n > 0, s >= 0 */
    ZipfSampler(unsigned n, double s);

    /** Draw a rank in [0, n). */
    unsigned sample(Rng &rng) const;

    unsigned size() const { return static_cast<unsigned>(cdf_.size()); }

  private:
    std::vector<double> cdf_;
};

} // namespace nuca

#endif // NUCA_BASE_RANDOM_HH
