/**
 * @file
 * The cross-run full-result cache: one JSON file per content key in a
 * cache directory, so a spec the daemon has already simulated is
 * answered in O(1) without spawning a worker.
 *
 * The key comes from JobSpec::resultKey() — the checkpoint layer's
 * runKey extended over scheme + mix + run length — and the stored
 * payload is the exact mixResultToJson encoding, whose exact double
 * round-trip makes a cache hit byte-identical to the run that
 * populated it.
 *
 * Loads are defensive, mirroring the checkpoint cache: a missing file
 * is a silent miss, a corrupt or key-mismatched file is a miss (and
 * is deleted). Rerunning the simulation is always the fallback, never
 * a wrong result.
 */

#ifndef NUCA_SERVICE_RESULT_CACHE_HH
#define NUCA_SERVICE_RESULT_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>

#include "sim/experiment.hh"

namespace nuca {
namespace service {

struct JobSpec;

class ResultCache
{
  public:
    /** A cache rooted at @p dir; empty disables caching entirely. */
    explicit ResultCache(std::string dir);

    bool enabled() const { return !dir_.empty(); }

    /** File path of the entry with content key @p key. */
    std::string pathFor(std::uint64_t key) const;

    /**
     * Look up @p key; nullopt on a miss. A file that does not parse
     * or whose recorded key disagrees with its name is removed and
     * reported as a miss.
     */
    std::optional<MixResult> get(std::uint64_t key) const;

    /**
     * Store @p result under @p key (atomically, via tmp + rename),
     * together with the originating spec for human inspection.
     * Best-effort: an unwritable directory warns instead of failing
     * the job.
     */
    void put(std::uint64_t key, const JobSpec &spec,
             const MixResult &result) const;

    /** Entries currently on disk (for the stats op / tests). */
    std::size_t count() const;

  private:
    std::string dir_;
};

} // namespace service
} // namespace nuca

#endif // NUCA_SERVICE_RESULT_CACHE_HH
