/**
 * @file
 * The experiment-spec half of the nuca_sweepd protocol: what a client
 * submits, how it is validated, and the content key the full-result
 * cache files it under.
 *
 * A JobSpec is deliberately a *description*, not a SystemConfig dump:
 * clients name a base configuration (the paper's tables) plus a
 * scheme, and the daemon expands that to the full config. The result
 * key, however, is derived from the *expanded* configuration via the
 * checkpoint layer's runKey — the same content-addressing the warmup
 * cache uses, extended over scheme + mix + run length — so any knob
 * that changes simulated state changes the key and misses the cache.
 */

#ifndef NUCA_SERVICE_JOB_SPEC_HH
#define NUCA_SERVICE_JOB_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/json_writer.hh"
#include "sim/robustness.hh"
#include "sim/system_config.hh"

namespace nuca {
namespace service {

/** A malformed or unsatisfiable spec; the daemon answers the request
 *  with the message instead of dying. */
class SpecError : public SimulationError
{
  public:
    using SimulationError::SimulationError;
};

/** What kind of computation a job asks for. */
enum class JobKind
{
    Mix,       ///< runMix: one mix on one configuration
    MissCurve, ///< l3MissCurve: fig03's functional replay, one app
};

const char *to_string(JobKind kind);

/** One submitted experiment. */
struct JobSpec
{
    JobKind kind = JobKind::Mix;

    /** Base configuration: "baseline", "quad_private", "large8mb",
     *  or "scaled_tech". */
    std::string base = "baseline";
    /** L3 scheme: "private", "shared", "adaptive", or "random". */
    std::string scheme = "adaptive";
    /** Application names; numCores of them for Mix, one for
     *  MissCurve. */
    std::vector<std::string> apps;
    std::uint64_t seed = 0;
    Cycle warmupCycles = 200000;
    Cycle measureCycles = 1000000;
    /** Instructions replayed by a MissCurve job. */
    std::uint64_t insts = 20000000;

    /** Fair-share accounting bucket. */
    std::string tenant = "default";
    /** Higher runs earlier among equal-service tenants. */
    int priority = 0;
    /** Display label; defaulted from the spec when empty. */
    std::string label;

    /** Expand base+scheme into the full configuration.
     *  @throws SpecError on unknown names. */
    SystemConfig config() const;

    /** Validate everything (names, app count); @throws SpecError. */
    void validate() const;

    /** The label, or a generated "<kind>:<scheme>.<base> apps#seed"
     *  one. */
    std::string displayLabel() const;

    /**
     * Content key of this spec's full result: runKey(config, apps,
     * seed, warmup, measure) for Mix jobs, a tagged digest of
     * (app, insts) for MissCurve jobs. Two specs with equal keys
     * would simulate bit-identical runs.
     */
    std::uint64_t resultKey() const;

    json::Value toJson() const;

    /** Parse and validate; @throws SpecError on anything wrong. */
    static JobSpec fromJson(const json::Value &obj);
};

/** Parse an L3 scheme name; @throws SpecError. */
L3Scheme schemeFromString(const std::string &name);

} // namespace service
} // namespace nuca

#endif // NUCA_SERVICE_JOB_SPEC_HH
