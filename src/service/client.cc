#include "service/client.hh"

#include <chrono>
#include <cstdio>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#define NUCA_SERVICE_HAVE_SOCKETS 1
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define NUCA_SERVICE_HAVE_SOCKETS 0
#endif

namespace nuca {
namespace service {

SweepClient::SweepClient(std::string socketPath)
    : socket_(std::move(socketPath))
{
}

#if NUCA_SERVICE_HAVE_SOCKETS

json::Value
SweepClient::request(const json::Value &req) const
{
    sockaddr_un addr{};
    if (socket_.size() >= sizeof(addr.sun_path))
        throw ClientError("socket path too long: " + socket_);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throw ClientError("socket() failed");
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                  socket_.c_str());
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        throw ClientError("cannot connect to " + socket_ +
                          " (is nuca_sweepd running?)");
    }

    const std::string out = req.dump() + "\n";
    std::size_t sent = 0;
    while (sent < out.size()) {
        const ssize_t w =
            ::write(fd, out.data() + sent, out.size() - sent);
        if (w <= 0) {
            ::close(fd);
            throw ClientError("write to " + socket_ + " failed");
        }
        sent += static_cast<std::size_t>(w);
    }

    std::string line;
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n <= 0)
            break;
        line.append(chunk, static_cast<std::size_t>(n));
        if (line.find('\n') != std::string::npos)
            break;
    }
    ::close(fd);

    const std::size_t eol = line.find('\n');
    if (eol == std::string::npos)
        throw ClientError("no response from " + socket_);
    const auto response = json::Value::tryParse(line.substr(0, eol));
    if (!response)
        throw ClientError("unparsable response from " + socket_);
    return *response;
}

#else // !NUCA_SERVICE_HAVE_SOCKETS

json::Value
SweepClient::request(const json::Value &) const
{
    throw ClientError(
        "Unix-domain sockets are unavailable on this platform");
}

#endif // NUCA_SERVICE_HAVE_SOCKETS

namespace {

json::Value
opRequest(const char *op)
{
    json::Value req = json::Value::object();
    req.set("op", op);
    return req;
}

json::Value
idRequest(const char *op, std::uint64_t id)
{
    json::Value req = opRequest(op);
    req.set("id", id);
    return req;
}

bool
responseOk(const json::Value &resp)
{
    return resp.type() == json::Value::Type::Object &&
           resp.contains("ok") &&
           resp.at("ok").type() == json::Value::Type::Bool &&
           resp.at("ok").asBool();
}

std::string
responseError(const json::Value &resp)
{
    if (resp.type() == json::Value::Type::Object &&
        resp.contains("error") &&
        resp.at("error").type() == json::Value::Type::String)
        return resp.at("error").asString();
    return "daemon refused the request";
}

} // namespace

bool
SweepClient::ping(unsigned retries) const
{
    for (unsigned attempt = 0;; ++attempt) {
        try {
            return responseOk(request(opRequest("ping")));
        } catch (const ClientError &) {
            if (attempt >= retries)
                return false;
        }
        std::this_thread::sleep_for(std::chrono::seconds(1));
    }
}

json::Value
SweepClient::submit(const JobSpec &spec) const
{
    json::Value req = opRequest("submit");
    req.set("spec", spec.toJson());
    json::Value resp = request(req);
    if (!responseOk(resp))
        throw ClientError("submit rejected: " +
                          responseError(resp));
    return resp;
}

json::Value
SweepClient::status() const
{
    return request(opRequest("status"));
}

json::Value
SweepClient::result(std::uint64_t id) const
{
    return request(idRequest("result", id));
}

json::Value
SweepClient::waitResult(std::uint64_t id, std::uint64_t timeoutMs,
                        std::uint64_t pollMs) const
{
    const auto t0 = std::chrono::steady_clock::now();
    for (;;) {
        json::Value resp = result(id);
        const std::string state =
            resp.contains("state") ? resp.at("state").asString()
                                   : "unknown";
        if (state == "ok" || state == "cache_hit")
            return resp;
        if (state == "failed" || state == "cancelled")
            throw ClientError("job " + std::to_string(id) + " " +
                              state + ": " + responseError(resp));
        if (timeoutMs != 0) {
            const auto waited =
                std::chrono::duration_cast<
                    std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            if (static_cast<std::uint64_t>(waited) >= timeoutMs)
                throw ClientError("timed out waiting for job " +
                                  std::to_string(id) +
                                  " (state " + state + ")");
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(pollMs));
    }
}

json::Value
SweepClient::preempt(std::uint64_t id) const
{
    return request(idRequest("preempt", id));
}

json::Value
SweepClient::cancel(std::uint64_t id) const
{
    return request(idRequest("cancel", id));
}

json::Value
SweepClient::drain() const
{
    return request(opRequest("drain"));
}

json::Value
SweepClient::stats() const
{
    return request(opRequest("stats"));
}

json::Value
SweepClient::shutdown() const
{
    return request(opRequest("shutdown"));
}

} // namespace service
} // namespace nuca
