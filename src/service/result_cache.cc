#include "service/result_cache.hh"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "service/job_spec.hh"
#include "sim/json_writer.hh"
#include "sim/sweep_store.hh"

namespace nuca {
namespace service {

namespace {

std::string
hex16(std::uint64_t key)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, key);
    return buf;
}

} // namespace

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {}

std::string
ResultCache::pathFor(std::uint64_t key) const
{
    return dir_ + "/" + hex16(key) + ".result.json";
}

std::optional<MixResult>
ResultCache::get(std::uint64_t key) const
{
    if (!enabled())
        return std::nullopt;
    const std::string path = pathFor(key);

    std::ifstream in(path, std::ios::binary);
    if (!in.is_open())
        return std::nullopt; // silent miss

    std::ostringstream text;
    text << in.rdbuf();
    const auto doc = json::Value::tryParse(text.str());

    const bool shaped = doc &&
                        doc->type() == json::Value::Type::Object &&
                        doc->contains("key") &&
                        doc->at("key").type() ==
                            json::Value::Type::String &&
                        doc->contains("result");
    if (!shaped || doc->at("key").asString() != hex16(key)) {
        std::fprintf(stderr,
                     "warning: result cache entry %s is corrupt or "
                     "mismatched; dropping it\n",
                     path.c_str());
        std::error_code ec;
        std::filesystem::remove(path, ec);
        return std::nullopt;
    }
    return mixResultFromJson(doc->at("result"));
}

void
ResultCache::put(std::uint64_t key, const JobSpec &spec,
                 const MixResult &result) const
{
    if (!enabled())
        return;
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        std::fprintf(stderr,
                     "warning: cannot create result cache dir %s: "
                     "%s\n",
                     dir_.c_str(), ec.message().c_str());
        return;
    }
    json::Value doc = json::Value::object();
    doc.set("key", hex16(key));
    doc.set("spec", spec.toJson());
    doc.set("result", mixResultToJson(result));
    json::writeFileAtomic(pathFor(key), doc);
}

std::size_t
ResultCache::count() const
{
    if (!enabled())
        return 0;
    std::error_code ec;
    std::filesystem::directory_iterator it(dir_, ec);
    if (ec)
        return 0;
    std::size_t n = 0;
    for (const auto &entry : it) {
        if (entry.is_regular_file(ec) &&
            entry.path().filename().string().ends_with(
                ".result.json"))
            ++n;
    }
    return n;
}

} // namespace service
} // namespace nuca
