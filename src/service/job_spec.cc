#include "service/job_spec.hh"

#include <cstdlib>

#include "sim/checkpoint.hh"
#include "workload/spec_profiles.hh"

namespace nuca {
namespace service {

const char *
to_string(JobKind kind)
{
    switch (kind) {
      case JobKind::Mix: return "mix";
      case JobKind::MissCurve: return "miss_curve";
    }
    return "unknown";
}

L3Scheme
schemeFromString(const std::string &name)
{
    if (name == "private") return L3Scheme::Private;
    if (name == "shared") return L3Scheme::Shared;
    if (name == "adaptive") return L3Scheme::Adaptive;
    if (name == "random") return L3Scheme::RandomReplacement;
    throw SpecError("unknown scheme \"" + name +
                    "\" (want private|shared|adaptive|random)");
}

namespace {

JobKind
kindFromString(const std::string &name)
{
    if (name == "mix") return JobKind::Mix;
    if (name == "miss_curve") return JobKind::MissCurve;
    throw SpecError("unknown kind \"" + name +
                    "\" (want mix|miss_curve)");
}

// Guarded accessors: json::Value::at/as* panic on a shape mismatch,
// which would kill the daemon on a malformed request. These turn
// every shape error into a SpecError the protocol layer reports back
// to the client instead.
const json::Value &
member(const json::Value &obj, const std::string &key)
{
    if (obj.type() != json::Value::Type::Object || !obj.contains(key))
        throw SpecError("missing field \"" + key + "\"");
    return obj.at(key);
}

std::string
getString(const json::Value &obj, const std::string &key)
{
    const json::Value &v = member(obj, key);
    if (v.type() != json::Value::Type::String)
        throw SpecError("field \"" + key + "\" must be a string");
    return v.asString();
}

std::string
getStringOr(const json::Value &obj, const std::string &key,
            const std::string &def)
{
    if (obj.type() != json::Value::Type::Object || !obj.contains(key))
        return def;
    return getString(obj, key);
}

double
getNumber(const json::Value &obj, const std::string &key)
{
    const json::Value &v = member(obj, key);
    if (v.type() != json::Value::Type::Number)
        throw SpecError("field \"" + key + "\" must be a number");
    return v.asNumber();
}

std::uint64_t
getUnsignedOr(const json::Value &obj, const std::string &key,
              std::uint64_t def)
{
    if (obj.type() != json::Value::Type::Object || !obj.contains(key))
        return def;
    const double n = getNumber(obj, key);
    if (n < 0)
        throw SpecError("field \"" + key + "\" must be non-negative");
    return static_cast<std::uint64_t>(n);
}

/**
 * Seeds are 64-bit and a JSON number only carries 53 mantissa bits,
 * so the codec ships them as decimal strings; a plain number is also
 * accepted for hand-written small seeds.
 */
std::uint64_t
getSeedOr(const json::Value &obj, const std::string &key,
          std::uint64_t def)
{
    if (obj.type() != json::Value::Type::Object || !obj.contains(key))
        return def;
    const json::Value &v = obj.at(key);
    if (v.type() == json::Value::Type::Number) {
        if (v.asNumber() < 0)
            throw SpecError("field \"" + key +
                            "\" must be non-negative");
        return static_cast<std::uint64_t>(v.asNumber());
    }
    if (v.type() == json::Value::Type::String) {
        const std::string &text = v.asString();
        char *end = nullptr;
        const unsigned long long parsed =
            std::strtoull(text.c_str(), &end, 10);
        if (text.empty() || end == nullptr || *end != '\0')
            throw SpecError("field \"" + key +
                            "\" is not a decimal integer");
        return parsed;
    }
    throw SpecError("field \"" + key +
                    "\" must be a number or decimal string");
}

} // namespace

SystemConfig
JobSpec::config() const
{
    const L3Scheme parsed = schemeFromString(scheme);
    if (base == "baseline")
        return SystemConfig::baseline(parsed);
    if (base == "quad_private") {
        if (parsed != L3Scheme::Private)
            throw SpecError(
                "base \"quad_private\" implies scheme private");
        return SystemConfig::quadSizePrivate();
    }
    if (base == "large8mb")
        return SystemConfig::large8MB(parsed);
    if (base == "scaled_tech")
        return SystemConfig::scaledTech(parsed);
    throw SpecError(
        "unknown base \"" + base +
        "\" (want baseline|quad_private|large8mb|scaled_tech)");
}

void
JobSpec::validate() const
{
    for (const std::string &app : apps) {
        if (findProfile(app) == nullptr)
            throw SpecError("unknown application \"" + app + "\"");
    }
    if (kind == JobKind::MissCurve) {
        if (apps.size() != 1)
            throw SpecError("miss_curve jobs take exactly one app");
        if (insts == 0)
            throw SpecError("miss_curve jobs need insts > 0");
        return;
    }
    const SystemConfig cfg = config();
    if (apps.size() != cfg.numCores)
        throw SpecError("mix jobs need " +
                        std::to_string(cfg.numCores) + " apps, got " +
                        std::to_string(apps.size()));
    if (measureCycles == 0)
        throw SpecError("mix jobs need measure_cycles > 0");
}

std::string
JobSpec::displayLabel() const
{
    if (!label.empty())
        return label;
    std::string joined;
    for (const std::string &app : apps) {
        if (!joined.empty())
            joined += "+";
        joined += app;
    }
    return std::string(to_string(kind)) + ":" + scheme + "." + base +
           " " + joined + "#" + std::to_string(seed);
}

std::uint64_t
JobSpec::resultKey() const
{
    if (kind == JobKind::MissCurve) {
        // The replay depends only on the app, the instruction count,
        // and the (fixed) geometry/seed of MissCurveParams; the tag
        // versions the key space away from mix runKeys.
        const std::string material = "miss_curve.v1|" + apps.at(0) +
                                     "|" + std::to_string(insts) +
                                     "|4096|16|2024";
        return hashBytes(
            reinterpret_cast<const std::uint8_t *>(material.data()),
            material.size());
    }
    return runKey(config(), apps, seed, warmupCycles, measureCycles);
}

json::Value
JobSpec::toJson() const
{
    json::Value obj = json::Value::object();
    obj.set("kind", to_string(kind));
    obj.set("base", base);
    obj.set("scheme", scheme);
    json::Value names = json::Value::array();
    for (const std::string &app : apps)
        names.append(app);
    obj.set("apps", std::move(names));
    obj.set("seed", std::to_string(seed));
    obj.set("warmup_cycles", warmupCycles);
    obj.set("measure_cycles", measureCycles);
    if (kind == JobKind::MissCurve)
        obj.set("insts", insts);
    obj.set("tenant", tenant);
    obj.set("priority", priority);
    if (!label.empty())
        obj.set("label", label);
    return obj;
}

JobSpec
JobSpec::fromJson(const json::Value &obj)
{
    if (obj.type() != json::Value::Type::Object)
        throw SpecError("spec must be a JSON object");

    JobSpec spec;
    spec.kind = kindFromString(getStringOr(obj, "kind", "mix"));
    spec.base = getStringOr(obj, "base", "baseline");
    spec.scheme = getStringOr(obj, "scheme", "adaptive");

    const json::Value &apps = member(obj, "apps");
    if (apps.type() != json::Value::Type::Array)
        throw SpecError("field \"apps\" must be an array");
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const json::Value &app = apps.at(i);
        if (app.type() != json::Value::Type::String)
            throw SpecError("field \"apps\" must hold strings");
        spec.apps.push_back(app.asString());
    }

    spec.seed = getSeedOr(obj, "seed", 0);
    spec.warmupCycles = getUnsignedOr(obj, "warmup_cycles", 200000);
    spec.measureCycles =
        getUnsignedOr(obj, "measure_cycles", 1000000);
    spec.insts = getUnsignedOr(obj, "insts", 20000000);
    spec.tenant = getStringOr(obj, "tenant", "default");
    const double priority = [&] {
        if (!obj.contains("priority"))
            return 0.0;
        return getNumber(obj, "priority");
    }();
    spec.priority = static_cast<int>(priority);
    spec.label = getStringOr(obj, "label", "");

    spec.validate();
    return spec;
}

} // namespace service
} // namespace nuca
