/**
 * @file
 * nuca_sweepd: the long-running simulation service. Clients submit
 * experiment specs as line-delimited JSON over a Unix-domain socket;
 * the daemon answers each line with one JSON response line.
 *
 * Inside, three mechanisms cooperate:
 *
 *  - A priority job queue drained by a bounded worker pool. A free
 *    worker goes to the most starved tenant (see scheduler.hh); jobs
 *    execute through the proc_pool sandbox when isolation is on.
 *
 *  - Preemptive fair share: a long-running job of an over-served
 *    tenant is asked to stop at its next REPRO_CKPT_PERIOD-style
 *    snapshot boundary (ProcJobHandle::requestPreempt — a flag for
 *    in-process jobs, SIGTERM for sandbox children). The run saves
 *    its snapshot, throws JobPreempted, and the job is requeued; the
 *    next attempt resumes from the snapshot and finishes with a
 *    result bit-identical to an uninterrupted run.
 *
 *  - A content-addressed full-result cache keyed by
 *    JobSpec::resultKey() (the checkpoint layer's runKey over config
 *    + scheme + mix + run length): a spec the daemon has already
 *    simulated settles as cache_hit at submit time, with no worker
 *    involved.
 *
 * Every settle is journaled to <state>/jobs.jsonl through the sweep
 * sidecar codec with scheduling telemetry (queue_ms, preempts), which
 * `trace_report --sweep` renders.
 *
 * Protocol ops: ping, submit, status, result, preempt, cancel, drain,
 * stats, shutdown — see docs/SERVICE.md for the wire format.
 */

#ifndef NUCA_SERVICE_SWEEPD_HH
#define NUCA_SERVICE_SWEEPD_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/job_spec.hh"
#include "service/result_cache.hh"
#include "service/scheduler.hh"
#include "sim/json_writer.hh"
#include "sim/proc_pool.hh"
#include "sim/sweep_store.hh"

namespace nuca {
namespace service {

/** Daemon knobs; each field's env default is named alongside it. */
struct DaemonOptions
{
    /** Unix-domain socket path; empty = no socket (tests drive
     *  handle() directly). SWEEPD_SOCKET. */
    std::string socketPath;
    /** State directory: jobs.jsonl journal, ckpt/ snapshots,
     *  results/ cache. SWEEPD_STATE (default ".sweepd"). */
    std::string stateDir = ".sweepd";
    /** Worker pool size. SWEEPD_WORKERS (default 2). */
    unsigned workers = 2;
    /** Snapshot period in cycles for preemptible runs.
     *  SWEEPD_PREEMPT_PERIOD (default 200000). */
    Cycle preemptPeriod = 200000;
    /** Fair-share quantum in ms: past it, a job of an over-served
     *  tenant may be preempted for a starved one. 0 disables the
     *  automatic preempter (explicit `preempt` ops still work).
     *  SWEEPD_QUANTUM_MS (default 1000). */
    std::uint64_t quantumMs = 1000;
    /** Run jobs through the proc_pool sandbox (fork per attempt).
     *  SWEEPD_ISOLATE (default 1 where fork exists). */
    bool isolate = true;

    static DaemonOptions fromEnv();
};

/** Where a job is in its life. */
enum class JobState
{
    Queued,    ///< waiting for a worker
    Running,   ///< a worker is executing it
    Preempted, ///< yielded at a snapshot; requeued, resumes next pick
    Ok,        ///< finished; result available
    CacheHit,  ///< settled at submit time from the result cache
    Failed,    ///< threw; error available
    Cancelled, ///< cancelled before completing
};

const char *to_string(JobState state);

/** True for states that will never change again. */
bool isTerminal(JobState state);

/** One submitted job and everything the daemon knows about it. */
struct Job
{
    std::uint64_t id = 0;
    JobSpec spec;
    std::uint64_t key = 0;
    JobState state = JobState::Queued;
    MixResult result;
    std::string error;
    std::uint64_t preempts = 0;
    /** Total ms spent waiting in the queue, across all attempts. */
    std::uint64_t queueMs = 0;
    std::chrono::steady_clock::time_point enqueuedAt{};
    std::chrono::steady_clock::time_point startedAt{};
    bool cancelRequested = false;
    /** Live while a worker runs it; the preemption channel. */
    std::shared_ptr<ProcJobHandle> handle;
};

class SweepDaemon
{
  public:
    explicit SweepDaemon(DaemonOptions options);
    ~SweepDaemon();

    SweepDaemon(const SweepDaemon &) = delete;
    SweepDaemon &operator=(const SweepDaemon &) = delete;

    /**
     * Dispatch one protocol request and build its response. Public
     * and thread-safe: the socket loop calls it per line, tests call
     * it directly. Never throws — every error becomes an
     * {ok: false, error} response.
     */
    json::Value handle(const json::Value &request);

    /** Spawn the worker pool, the fair-share preempter, and (when
     *  socketPath is set) the socket accept loop. */
    void start();

    /** Ask everything to stop: running jobs are preempted at their
     *  next snapshot and requeued. Safe from any thread. */
    void requestStop();

    /** Join all threads (after requestStop or a shutdown op). */
    void join();

    bool stopRequested() const;

    /** Worker executions started (cache hits never increment it). */
    std::uint64_t executedJobs() const;

    const ResultCache &resultCache() const { return cache_; }
    const DaemonOptions &options() const { return opts_; }

  private:
    json::Value opSubmit(const json::Value &request);
    json::Value opStatus(const json::Value &request);
    json::Value opResult(const json::Value &request);
    json::Value opPreempt(const json::Value &request);
    json::Value opCancel(const json::Value &request);
    json::Value opDrain();
    json::Value opStats();

    void workerLoop();
    void preempterLoop();
    void acceptLoop();

    /** Run one job attempt (sandboxed when configured). */
    MixResult execute(const JobSpec &spec, ProcJobHandle *handle);

    /** Append a journal record for @p job's current state. */
    void journal(const Job &job);

    Job *findJob(std::uint64_t id);

    DaemonOptions opts_;
    ProcIsolation iso_;
    ResultCache cache_;
    std::unique_ptr<SweepStore> journal_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::map<std::uint64_t, Job> jobs_;
    std::uint64_t nextId_ = 1;
    TenantService tenantService_;
    unsigned busyWorkers_ = 0;
    std::uint64_t executed_ = 0;
    bool stop_ = false;
    bool draining_ = false;

    std::vector<std::thread> workers_;
    std::thread preempter_;
    std::thread accepter_;
    int listenFd_ = -1;
};

} // namespace service
} // namespace nuca

#endif // NUCA_SERVICE_SWEEPD_HH
