/**
 * @file
 * SweepClient: the nuca_subctl side of the daemon protocol. One
 * request is one connection — connect, send one JSON line, read one
 * response line, close — which keeps the client trivially correct
 * under daemon restarts and makes every helper below a thin wrapper
 * over request().
 */

#ifndef NUCA_SERVICE_CLIENT_HH
#define NUCA_SERVICE_CLIENT_HH

#include <cstdint>
#include <string>

#include "service/job_spec.hh"
#include "sim/json_writer.hh"

namespace nuca {
namespace service {

/** The daemon is unreachable or answered garbage. */
class ClientError : public SimulationError
{
  public:
    using SimulationError::SimulationError;
};

class SweepClient
{
  public:
    explicit SweepClient(std::string socketPath);

    /** Send one request line, return the parsed response line.
     *  @throws ClientError on connect/IO/parse failure. */
    json::Value request(const json::Value &req) const;

    /** True when the daemon answers a ping; retries once a second
     *  up to @p retries times (for just-started daemons). */
    bool ping(unsigned retries = 0) const;

    /** Submit @p spec; returns the full submit response
     *  (id/state/key). @throws ClientError when not ok. */
    json::Value submit(const JobSpec &spec) const;

    /** One status snapshot (all jobs). */
    json::Value status() const;

    /** One result poll for @p id (may not be done yet). */
    json::Value result(std::uint64_t id) const;

    /**
     * Poll until job @p id reaches a terminal state and return the
     * final result response. @throws ClientError when the job failed,
     * was cancelled, or @p timeoutMs elapsed (0 = wait forever).
     */
    json::Value waitResult(std::uint64_t id,
                           std::uint64_t timeoutMs = 0,
                           std::uint64_t pollMs = 50) const;

    /** Ask the daemon to preempt / cancel job @p id. */
    json::Value preempt(std::uint64_t id) const;
    json::Value cancel(std::uint64_t id) const;

    json::Value drain() const;
    json::Value stats() const;
    json::Value shutdown() const;

    const std::string &socketPath() const { return socket_; }

  private:
    std::string socket_;
};

} // namespace service
} // namespace nuca

#endif // NUCA_SERVICE_CLIENT_HH
