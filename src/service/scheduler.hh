/**
 * @file
 * The daemon's scheduling policy, factored into pure functions over
 * plain snapshots so the policy is unit-testable without sockets,
 * threads, or simulations.
 *
 * Fair share: each tenant accumulates the milliseconds of worker time
 * its jobs have consumed. A free worker always goes to the most
 * starved tenant — minimum accumulated service — and only within that
 * tenant do priority (higher first) and submission order (earlier
 * first) break ties. Preemption closes the loop: when a starved
 * tenant waits while every worker is busy, the scheduler picks the
 * running victim whose tenant is most *over*-served and asks the run
 * to stop at its next checkpoint, requeueing it with its snapshot.
 */

#ifndef NUCA_SERVICE_SCHEDULER_HH
#define NUCA_SERVICE_SCHEDULER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nuca {
namespace service {

/** What the policy needs to know about one queued or running job. */
struct SchedJob
{
    std::uint64_t id = 0;
    std::string tenant;
    int priority = 0;
};

/** Accumulated worker milliseconds per tenant. */
using TenantService = std::map<std::string, std::uint64_t>;

/**
 * Index into @p queued of the job a free worker should take: minimum
 * tenant service, then maximum priority, then minimum id. Returns
 * (size_t)-1 when the queue is empty.
 */
std::size_t pickNextIndex(const std::vector<SchedJob> &queued,
                          const TenantService &service);

/**
 * Index into @p running of the job to preempt so @p waiting can run:
 * the victim with maximum tenant service, then minimum priority, then
 * maximum id (the youngest of the most over-served — it has the least
 * sunk work past its snapshot). Returns (size_t)-1 when no victim
 * would help: every running job's tenant is at most as served as the
 * waiting job's, or @p running is empty.
 */
std::size_t pickPreemptVictim(const std::vector<SchedJob> &running,
                              const SchedJob &waiting,
                              const TenantService &service);

/** service[tenant], defaulting to 0 for tenants not yet seen. */
std::uint64_t serviceOf(const TenantService &service,
                        const std::string &tenant);

} // namespace service
} // namespace nuca

#endif // NUCA_SERVICE_SCHEDULER_HH
