#include "service/sweepd.hh"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "sim/checkpoint.hh"
#include "sim/robustness.hh"
#include "workload/miss_curve.hh"
#include "workload/spec_profiles.hh"

#if defined(__unix__) || defined(__APPLE__)
#define NUCA_SERVICE_HAVE_SOCKETS 1
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define NUCA_SERVICE_HAVE_SOCKETS 0
#endif

namespace nuca {
namespace service {

namespace {

std::uint64_t
nowMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::uint64_t
msSince(std::chrono::steady_clock::time_point t0)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

std::string
hex16(std::uint64_t key)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, key);
    return buf;
}

json::Value
errorResponse(const std::string &message)
{
    json::Value resp = json::Value::object();
    resp.set("ok", false);
    resp.set("error", message);
    return resp;
}

JobStatus
journalStatus(JobState state)
{
    switch (state) {
      case JobState::Queued: return JobStatus::Queued;
      case JobState::Running: return JobStatus::Queued;
      case JobState::Preempted: return JobStatus::Preempted;
      case JobState::Ok: return JobStatus::Ok;
      case JobState::CacheHit: return JobStatus::CacheHit;
      case JobState::Failed: return JobStatus::Failed;
      case JobState::Cancelled: return JobStatus::Cancelled;
    }
    return JobStatus::Failed;
}

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

} // namespace

const char *
to_string(JobState state)
{
    switch (state) {
      case JobState::Queued: return "queued";
      case JobState::Running: return "running";
      case JobState::Preempted: return "preempted";
      case JobState::Ok: return "ok";
      case JobState::CacheHit: return "cache_hit";
      case JobState::Failed: return "failed";
      case JobState::Cancelled: return "cancelled";
    }
    return "unknown";
}

bool
isTerminal(JobState state)
{
    return state == JobState::Ok || state == JobState::CacheHit ||
           state == JobState::Failed ||
           state == JobState::Cancelled;
}

DaemonOptions
DaemonOptions::fromEnv()
{
    DaemonOptions opts;
    opts.socketPath = envString("SWEEPD_SOCKET");
    const std::string state = envString("SWEEPD_STATE");
    if (!state.empty())
        opts.stateDir = state;
    opts.workers = static_cast<unsigned>(
        envOr("SWEEPD_WORKERS", opts.workers));
    if (opts.workers == 0)
        opts.workers = 1;
    opts.preemptPeriod = envOr("SWEEPD_PREEMPT_PERIOD",
                               opts.preemptPeriod);
    opts.quantumMs = envOr("SWEEPD_QUANTUM_MS", opts.quantumMs);
    opts.isolate = envOr("SWEEPD_ISOLATE", 1) != 0;
    return opts;
}

SweepDaemon::SweepDaemon(DaemonOptions options)
    : opts_(std::move(options)),
      iso_(ProcIsolation::fromEnv()),
      cache_(opts_.stateDir + "/results")
{
    std::error_code ec;
    std::filesystem::create_directories(opts_.stateDir, ec);
    if (ec)
        throw SimulationError("cannot create state dir " +
                              opts_.stateDir + ": " + ec.message());
    // The daemon decides isolation itself; REPRO_ISOLATE only
    // contributes the resource-limit knobs.
    iso_.enabled = opts_.isolate && procIsolationSupported();
    iso_.preemptible = true;
    journal_ = std::make_unique<SweepStore>(opts_.stateDir +
                                            "/jobs.jsonl");
}

SweepDaemon::~SweepDaemon()
{
    requestStop();
    join();
}

void
SweepDaemon::journal(const Job &job)
{
    SweepRecord record;
    record.label = "job" + std::to_string(job.id) + ":" +
                   job.spec.displayLabel();
    record.status = journalStatus(job.state);
    record.error = job.error;
    if (job.state == JobState::Ok ||
        job.state == JobState::CacheHit)
        record.result = job.result;
    record.queueMs = job.queueMs;
    record.preempts = job.preempts;
    record.timed = true;
    journal_->append(record);
}

Job *
SweepDaemon::findJob(std::uint64_t id)
{
    const auto it = jobs_.find(id);
    return it == jobs_.end() ? nullptr : &it->second;
}

MixResult
SweepDaemon::execute(const JobSpec &spec, ProcJobHandle *handle)
{
    RunPolicy policy;
    policy.ckpt.dir = opts_.stateDir + "/ckpt";
    policy.ckpt.period = opts_.preemptPeriod;
    policy.ckpt.maxMb = CheckpointConfig::fromEnv().maxMb;
    policy.resume = true;
    policy.preempt = &handle->preempt;

    const auto body = [spec, policy]() -> MixResult {
        if (spec.kind == JobKind::MissCurve) {
            const WorkloadProfile *profile =
                findProfile(spec.apps.at(0));
            if (profile == nullptr)
                throw SpecError("unknown application \"" +
                                spec.apps.at(0) + "\"");
            MissCurveParams params;
            params.insts = spec.insts;
            const std::vector<Counter> counts =
                l3MissCurve(*profile, params);
            MixResult result;
            result.curve.assign(counts.begin(), counts.end());
            return result;
        }
        const ExperimentSpec mix{spec.apps, spec.seed};
        const SimWindow window{spec.warmupCycles,
                               spec.measureCycles};
        return runMix(spec.config(), mix, window,
                      spec.displayLabel(), policy);
    };

    if (iso_.enabled)
        return runMixSandboxed(iso_, body, handle);
    return body();
}

void
SweepDaemon::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        cv_.wait(lock, [&] {
            if (stop_)
                return true;
            for (const auto &[id, job] : jobs_) {
                if (job.state == JobState::Queued ||
                    job.state == JobState::Preempted)
                    return true;
            }
            return false;
        });
        if (stop_)
            return;

        // Fair-share pick among everything runnable.
        std::vector<SchedJob> runnable;
        std::vector<std::uint64_t> ids;
        for (const auto &[id, job] : jobs_) {
            if (job.state == JobState::Queued ||
                job.state == JobState::Preempted) {
                runnable.push_back(
                    {id, job.spec.tenant, job.spec.priority});
                ids.push_back(id);
            }
        }
        const std::size_t pick =
            pickNextIndex(runnable, tenantService_);
        if (pick == kNone)
            continue;

        Job &job = jobs_.at(ids[pick]);
        job.queueMs += msSince(job.enqueuedAt);
        job.state = JobState::Running;
        job.startedAt = std::chrono::steady_clock::now();
        job.handle = std::make_shared<ProcJobHandle>();
        const auto handle = job.handle;
        const JobSpec spec = job.spec;
        const std::uint64_t id = job.id;
        const std::uint64_t key = job.key;
        ++busyWorkers_;
        ++executed_;
        lock.unlock();

        enum class Outcome { Ok, Preempted, Failed };
        Outcome outcome = Outcome::Ok;
        MixResult result;
        std::string error;
        try {
            result = execute(spec, handle.get());
        } catch (const JobPreempted &e) {
            outcome = Outcome::Preempted;
            error = e.what();
        } catch (const std::exception &e) {
            outcome = Outcome::Failed;
            error = e.what();
        }

        lock.lock();
        Job &settled = jobs_.at(id);
        tenantService_[spec.tenant] += msSince(settled.startedAt);
        --busyWorkers_;
        settled.handle.reset();
        switch (outcome) {
          case Outcome::Ok:
            settled.state = JobState::Ok;
            settled.result = result;
            settled.error.clear();
            cache_.put(key, spec, result);
            journal(settled);
            break;
          case Outcome::Preempted:
            if (settled.cancelRequested) {
                settled.state = JobState::Cancelled;
                settled.error = "cancelled";
                journal(settled);
                break;
            }
            // Requeue with the snapshot it just saved; the next
            // attempt resumes from it (even after a daemon restart,
            // since the snapshot is content-addressed on disk).
            settled.state = JobState::Preempted;
            settled.error = error;
            ++settled.preempts;
            settled.enqueuedAt = std::chrono::steady_clock::now();
            journal(settled);
            break;
          case Outcome::Failed:
            settled.state = JobState::Failed;
            settled.error = error;
            journal(settled);
            break;
        }
        cv_.notify_all();
    }
}

void
SweepDaemon::preempterLoop()
{
    const std::uint64_t quantum = opts_.quantumMs;
    if (quantum == 0)
        return;
    const auto tick =
        std::chrono::milliseconds(std::min<std::uint64_t>(
            quantum, 200));
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
        cv_.wait_for(lock, tick);
        if (stop_)
            return;
        if (busyWorkers_ < opts_.workers)
            continue; // a free worker will drain the queue itself

        std::vector<SchedJob> waiting_jobs;
        for (const auto &[id, job] : jobs_) {
            if (job.state == JobState::Queued ||
                job.state == JobState::Preempted)
                waiting_jobs.push_back(
                    {id, job.spec.tenant, job.spec.priority});
        }
        // Charge running jobs' in-flight time to their tenants
        // before comparing: otherwise a fresh hog (zero settled
        // service) could never be preempted for a fresh waiter.
        TenantService charged = tenantService_;
        for (const auto &[id, job] : jobs_) {
            if (job.state == JobState::Running)
                charged[job.spec.tenant] += msSince(job.startedAt);
        }
        const std::size_t next =
            pickNextIndex(waiting_jobs, charged);
        if (next == kNone)
            continue;

        std::vector<SchedJob> running;
        std::vector<std::uint64_t> ids;
        for (const auto &[id, job] : jobs_) {
            if (job.state == JobState::Running && job.handle &&
                msSince(job.startedAt) >= quantum) {
                running.push_back(
                    {id, job.spec.tenant, job.spec.priority});
                ids.push_back(id);
            }
        }
        const std::size_t victim = pickPreemptVictim(
            running, waiting_jobs[next], charged);
        if (victim != kNone)
            jobs_.at(ids[victim]).handle->requestPreempt();
    }
}

json::Value
SweepDaemon::opSubmit(const json::Value &request)
{
    if (!request.contains("spec"))
        return errorResponse("submit needs a \"spec\" object");
    const JobSpec spec = JobSpec::fromJson(request.at("spec"));
    const std::uint64_t key = spec.resultKey();

    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_ || draining_)
        return errorResponse("daemon is draining");

    Job job;
    job.id = nextId_++;
    job.spec = spec;
    job.key = key;

    if (auto cached = cache_.get(key)) {
        job.state = JobState::CacheHit;
        job.result = std::move(*cached);
    } else {
        job.state = JobState::Queued;
        job.enqueuedAt = std::chrono::steady_clock::now();
    }

    json::Value resp = json::Value::object();
    resp.set("ok", true);
    resp.set("id", job.id);
    resp.set("state", to_string(job.state));
    resp.set("key", hex16(key));
    resp.set("label", spec.displayLabel());

    const bool hit = job.state == JobState::CacheHit;
    const Job &stored =
        jobs_.emplace(job.id, std::move(job)).first->second;
    if (hit)
        journal(stored);
    else
        cv_.notify_all();
    return resp;
}

json::Value
SweepDaemon::opStatus(const json::Value &request)
{
    std::lock_guard<std::mutex> lock(mutex_);
    json::Value list = json::Value::array();
    std::uint64_t queued = 0, running = 0;
    for (const auto &[id, job] : jobs_) {
        if (request.contains("id") &&
            request.at("id").asNumber() !=
                static_cast<double>(id))
            continue;
        json::Value info = json::Value::object();
        info.set("id", id);
        info.set("label", job.spec.displayLabel());
        info.set("tenant", job.spec.tenant);
        info.set("priority", job.spec.priority);
        info.set("state", to_string(job.state));
        info.set("preempts", job.preempts);
        info.set("queue_ms", job.queueMs);
        if (!job.error.empty())
            info.set("error", job.error);
        list.append(std::move(info));
        if (job.state == JobState::Queued ||
            job.state == JobState::Preempted)
            ++queued;
        if (job.state == JobState::Running)
            ++running;
    }
    json::Value resp = json::Value::object();
    resp.set("ok", true);
    resp.set("jobs", std::move(list));
    resp.set("queued", queued);
    resp.set("running", running);
    resp.set("draining", draining_);
    return resp;
}

json::Value
SweepDaemon::opResult(const json::Value &request)
{
    if (!request.contains("id") ||
        request.at("id").type() != json::Value::Type::Number)
        return errorResponse("result needs a numeric \"id\"");
    const auto id = static_cast<std::uint64_t>(
        request.at("id").asNumber());

    std::lock_guard<std::mutex> lock(mutex_);
    const Job *job = findJob(id);
    if (job == nullptr)
        return errorResponse("no such job " + std::to_string(id));

    json::Value resp = json::Value::object();
    resp.set("state", to_string(job->state));
    resp.set("preempts", job->preempts);
    resp.set("queue_ms", job->queueMs);
    if (job->state == JobState::Ok ||
        job->state == JobState::CacheHit) {
        resp.set("ok", true);
        resp.set("result", mixResultToJson(job->result));
    } else if (job->state == JobState::Failed ||
               job->state == JobState::Cancelled) {
        resp.set("ok", false);
        resp.set("error", job->error.empty()
                              ? std::string(to_string(job->state))
                              : job->error);
    } else {
        resp.set("ok", true); // not done yet: poll again
    }
    return resp;
}

json::Value
SweepDaemon::opPreempt(const json::Value &request)
{
    if (!request.contains("id") ||
        request.at("id").type() != json::Value::Type::Number)
        return errorResponse("preempt needs a numeric \"id\"");
    const auto id = static_cast<std::uint64_t>(
        request.at("id").asNumber());

    std::lock_guard<std::mutex> lock(mutex_);
    Job *job = findJob(id);
    if (job == nullptr)
        return errorResponse("no such job " + std::to_string(id));
    if (job->state != JobState::Running || !job->handle)
        return errorResponse("job " + std::to_string(id) +
                             " is not running (" +
                             to_string(job->state) + ")");
    job->handle->requestPreempt();
    json::Value resp = json::Value::object();
    resp.set("ok", true);
    resp.set("state", to_string(job->state));
    return resp;
}

json::Value
SweepDaemon::opCancel(const json::Value &request)
{
    if (!request.contains("id") ||
        request.at("id").type() != json::Value::Type::Number)
        return errorResponse("cancel needs a numeric \"id\"");
    const auto id = static_cast<std::uint64_t>(
        request.at("id").asNumber());

    std::lock_guard<std::mutex> lock(mutex_);
    Job *job = findJob(id);
    if (job == nullptr)
        return errorResponse("no such job " + std::to_string(id));
    json::Value resp = json::Value::object();
    if (isTerminal(job->state)) {
        resp.set("ok", false);
        resp.set("error", "job already " +
                              std::string(to_string(job->state)));
        return resp;
    }
    job->cancelRequested = true;
    if (job->state == JobState::Running && job->handle) {
        job->handle->requestPreempt(); // settles cancelled at the
                                       // next snapshot boundary
    } else {
        job->state = JobState::Cancelled;
        job->error = "cancelled";
        journal(*job);
    }
    resp.set("ok", true);
    resp.set("state", to_string(job->state));
    return resp;
}

json::Value
SweepDaemon::opDrain()
{
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
    std::uint64_t pending = 0;
    for (const auto &[id, job] : jobs_) {
        if (!isTerminal(job.state))
            ++pending;
    }
    json::Value resp = json::Value::object();
    resp.set("ok", true);
    resp.set("pending", pending);
    return resp;
}

json::Value
SweepDaemon::opStats()
{
    std::lock_guard<std::mutex> lock(mutex_);
    json::Value tenants = json::Value::object();
    for (const auto &[tenant, ms] : tenantService_)
        tenants.set(tenant, ms);
    json::Value resp = json::Value::object();
    resp.set("ok", true);
    resp.set("jobs", static_cast<std::uint64_t>(jobs_.size()));
    resp.set("executed", executed_);
    resp.set("cache_entries",
             static_cast<std::uint64_t>(cache_.count()));
    resp.set("tenant_service_ms", std::move(tenants));
    resp.set("workers", static_cast<std::uint64_t>(opts_.workers));
    return resp;
}

json::Value
SweepDaemon::handle(const json::Value &request)
{
    try {
        if (request.type() != json::Value::Type::Object ||
            !request.contains("op") ||
            request.at("op").type() != json::Value::Type::String)
            return errorResponse(
                "request must be an object with an \"op\" string");
        const std::string &op = request.at("op").asString();

        if (op == "ping") {
            json::Value resp = json::Value::object();
            resp.set("ok", true);
            resp.set("pong", true);
            resp.set("now_ms", nowMs());
            return resp;
        }
        if (op == "submit")
            return opSubmit(request);
        if (op == "status")
            return opStatus(request);
        if (op == "result")
            return opResult(request);
        if (op == "preempt")
            return opPreempt(request);
        if (op == "cancel")
            return opCancel(request);
        if (op == "drain")
            return opDrain();
        if (op == "stats")
            return opStats();
        if (op == "shutdown") {
            requestStop();
            json::Value resp = json::Value::object();
            resp.set("ok", true);
            resp.set("stopping", true);
            return resp;
        }
        return errorResponse("unknown op \"" + op + "\"");
    } catch (const std::exception &e) {
        return errorResponse(e.what());
    }
}

void
SweepDaemon::requestStop()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_)
        return;
    stop_ = true;
    draining_ = true;
    // Running jobs yield at their next snapshot; the requeued state
    // plus the on-disk snapshot make them resumable.
    for (auto &[id, job] : jobs_) {
        if (job.state == JobState::Running && job.handle)
            job.handle->requestPreempt();
    }
    cv_.notify_all();
}

bool
SweepDaemon::stopRequested() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stop_;
}

std::uint64_t
SweepDaemon::executedJobs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return executed_;
}

void
SweepDaemon::join()
{
    for (std::thread &worker : workers_) {
        if (worker.joinable())
            worker.join();
    }
    workers_.clear();
    if (preempter_.joinable())
        preempter_.join();
    if (accepter_.joinable())
        accepter_.join();
#if NUCA_SERVICE_HAVE_SOCKETS
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        ::unlink(opts_.socketPath.c_str());
    }
#endif
}

#if NUCA_SERVICE_HAVE_SOCKETS

void
SweepDaemon::start()
{
    if (!opts_.socketPath.empty()) {
        sockaddr_un addr{};
        if (opts_.socketPath.size() >= sizeof(addr.sun_path))
            throw SimulationError("socket path too long: " +
                                  opts_.socketPath);
        listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listenFd_ < 0)
            throw SimulationError("socket() failed");
        addr.sun_family = AF_UNIX;
        std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                      opts_.socketPath.c_str());
        ::unlink(opts_.socketPath.c_str());
        if (::bind(listenFd_,
                   reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) != 0 ||
            ::listen(listenFd_, 16) != 0) {
            ::close(listenFd_);
            listenFd_ = -1;
            throw SimulationError("cannot listen on " +
                                  opts_.socketPath);
        }
        accepter_ = std::thread([this] { acceptLoop(); });
    }
    for (unsigned i = 0; i < opts_.workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    preempter_ = std::thread([this] { preempterLoop(); });
}

void
SweepDaemon::acceptLoop()
{
    while (!stopRequested()) {
        pollfd pfd{listenFd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 200);
        if (ready <= 0)
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        // A wedged client may stall reads but not wedge the daemon
        // forever.
        timeval timeout{};
        timeout.tv_sec = 5;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                     sizeof(timeout));

        std::string buffer;
        char chunk[4096];
        bool open = true;
        while (open && !stopRequested()) {
            const ssize_t n = ::read(fd, chunk, sizeof(chunk));
            if (n <= 0)
                break;
            buffer.append(chunk, static_cast<std::size_t>(n));
            std::size_t eol;
            while ((eol = buffer.find('\n')) !=
                   std::string::npos) {
                const std::string line = buffer.substr(0, eol);
                buffer.erase(0, eol + 1);
                if (line.empty())
                    continue;
                const auto request = json::Value::tryParse(line);
                const json::Value response =
                    request ? handle(*request)
                            : errorResponse("request line is not "
                                            "valid JSON");
                const std::string out = response.dump() + "\n";
                std::size_t sent = 0;
                while (sent < out.size()) {
                    const ssize_t w = ::write(
                        fd, out.data() + sent, out.size() - sent);
                    if (w <= 0) {
                        open = false;
                        break;
                    }
                    sent += static_cast<std::size_t>(w);
                }
                if (!open)
                    break;
            }
        }
        ::close(fd);
    }
}

#else // !NUCA_SERVICE_HAVE_SOCKETS

void
SweepDaemon::start()
{
    if (!opts_.socketPath.empty())
        throw SimulationError(
            "Unix-domain sockets are unavailable on this platform; "
            "run with an empty socket path");
    for (unsigned i = 0; i < opts_.workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    preempter_ = std::thread([this] { preempterLoop(); });
}

void
SweepDaemon::acceptLoop()
{
}

#endif // NUCA_SERVICE_HAVE_SOCKETS

} // namespace service
} // namespace nuca
