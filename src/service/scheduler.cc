#include "service/scheduler.hh"

namespace nuca {
namespace service {

std::uint64_t
serviceOf(const TenantService &service, const std::string &tenant)
{
    const auto it = service.find(tenant);
    return it == service.end() ? 0 : it->second;
}

std::size_t
pickNextIndex(const std::vector<SchedJob> &queued,
              const TenantService &service)
{
    std::size_t best = static_cast<std::size_t>(-1);
    for (std::size_t i = 0; i < queued.size(); ++i) {
        if (best == static_cast<std::size_t>(-1)) {
            best = i;
            continue;
        }
        const SchedJob &a = queued[i];
        const SchedJob &b = queued[best];
        const std::uint64_t sa = serviceOf(service, a.tenant);
        const std::uint64_t sb = serviceOf(service, b.tenant);
        if (sa != sb) {
            if (sa < sb)
                best = i;
            continue;
        }
        if (a.priority != b.priority) {
            if (a.priority > b.priority)
                best = i;
            continue;
        }
        if (a.id < b.id)
            best = i;
    }
    return best;
}

std::size_t
pickPreemptVictim(const std::vector<SchedJob> &running,
                  const SchedJob &waiting,
                  const TenantService &service)
{
    const std::uint64_t waiting_service =
        serviceOf(service, waiting.tenant);
    std::size_t best = static_cast<std::size_t>(-1);
    for (std::size_t i = 0; i < running.size(); ++i) {
        const SchedJob &cand = running[i];
        // Preempting a peer of the waiting tenant (or a more starved
        // tenant) would just thrash; only an over-served tenant's job
        // is a victim.
        if (cand.tenant == waiting.tenant ||
            serviceOf(service, cand.tenant) <= waiting_service)
            continue;
        if (best == static_cast<std::size_t>(-1)) {
            best = i;
            continue;
        }
        const SchedJob &b = running[best];
        const std::uint64_t sc = serviceOf(service, cand.tenant);
        const std::uint64_t sb = serviceOf(service, b.tenant);
        if (sc != sb) {
            if (sc > sb)
                best = i;
            continue;
        }
        if (cand.priority != b.priority) {
            if (cand.priority < b.priority)
                best = i;
            continue;
        }
        if (cand.id > b.id)
            best = i;
    }
    return best;
}

} // namespace service
} // namespace nuca
